(* Discrete-event simulator tests: event heap ordering, engine
   semantics (determinism, cancellation, horizons), the Table-1
   topology, the network model (latency, bandwidth queueing, FIFO,
   faults) and the pipelined CPU model. *)

open Rdb_sim

(* -- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  let seq = ref 0 in
  List.iter
    (fun t ->
      incr seq;
      Heap.push h ~time:(Int64.of_int t) ~seq:!seq t)
    [ 5; 3; 9; 1; 7; 3; 0; 8 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some e ->
        out := e.Heap.payload :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted pop" [ 0; 1; 3; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.push h ~time:42L ~seq:i i
  done;
  let prev = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | Some e ->
        Alcotest.(check bool) "insertion order on ties" true (e.Heap.payload = !prev + 1);
        prev := e.Heap.payload;
        drain ()
    | None -> ()
  in
  drain ()

(* The schedule-exploration checker's tie-break perturbations assume
   equal-timestamp events pop in push order (the (time, seq) key makes
   insertion order the tie-break).  Pin that FIFO guarantee through
   array growth and interleaved pops, where an unstable heap would
   scramble it. *)
let test_heap_fifo_stress () =
  let h = Heap.create () in
  let popped = ref [] in
  let next = ref 0 in
  let push_batch time count =
    for _ = 1 to count do
      incr next;
      Heap.push h ~time ~seq:!next (time, !next)
    done
  in
  let pop_phase count =
    (* Each contiguous drain must come out time-sorted. *)
    let last = ref Int64.min_int in
    for _ = 1 to count do
      match Heap.pop h with
      | Some e ->
          let t, _ = e.Heap.payload in
          Alcotest.(check bool) "time nondecreasing within a drain" true (t >= !last);
          last := t;
          popped := e.Heap.payload :: !popped
      | None -> Alcotest.fail "heap empty too early"
    done
  in
  (* Three equal-time cohorts interleaved with pops; cohort sizes push
     the backing array through its 64-entry initial capacity twice. *)
  push_batch 10L 70;
  pop_phase 30;
  push_batch 10L 100;
  push_batch 5L 40;
  pop_phase 120;
  push_batch 10L 50;
  pop_phase (Heap.length h);
  Alcotest.(check bool) "drained" true (Heap.is_empty h);
  (* Within each timestamp, pops must follow push order exactly — the
     FIFO stability the simulation's determinism rests on. *)
  let last_seq : (int64, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (t, s) ->
      (match Hashtbl.find_opt last_seq t with
      | Some prev ->
          Alcotest.(check bool)
            (Printf.sprintf "FIFO within t=%Ld: %d after %d" t s prev)
            true (s > prev)
      | None -> ());
      Hashtbl.replace last_seq t s)
    (List.rev !popped)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap always pops in nondecreasing time order" ~count:100
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iteri (fun i t -> Heap.push h ~time:(Int64.of_int t) ~seq:i t) times;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some e -> e.Heap.payload >= last && drain e.Heap.payload
      in
      drain min_int)

(* -- Engine --------------------------------------------------------------- *)

let test_engine_ordering_and_time () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule_after e ~delay:(Time.ms 10) (fun () -> log := (10, Engine.now e) :: !log));
  ignore (Engine.schedule_after e ~delay:(Time.ms 5) (fun () -> log := (5, Engine.now e) :: !log));
  ignore (Engine.schedule_after e ~delay:(Time.ms 20) (fun () -> log := (20, Engine.now e) :: !log));
  Engine.run e;
  match List.rev !log with
  | [ (5, t5); (10, t10); (20, t20) ] ->
      Alcotest.(check int64) "t5" (Time.ms 5) t5;
      Alcotest.(check int64) "t10" (Time.ms 10) t10;
      Alcotest.(check int64) "t20" (Time.ms 20) t20
  | _ -> Alcotest.fail "wrong event order"

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_after e ~delay:(Time.ms 1) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled timer does not fire" false !fired

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule_after e ~delay:(Time.ms 10) tick)
  in
  ignore (Engine.schedule_after e ~delay:(Time.ms 10) tick);
  Engine.run_until e ~until:(Time.ms 105);
  Alcotest.(check int) "10 ticks in 105ms" 10 !count;
  Alcotest.(check int64) "clock at horizon" (Time.ms 105) (Engine.now e);
  Engine.run_until e ~until:(Time.ms 205);
  Alcotest.(check int) "20 ticks in 205ms" 20 !count

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.schedule_after e ~delay:(Time.ms 1) (fun () ->
         order := "a" :: !order;
         (* Schedule in the past: must still run, at current time. *)
         ignore (Engine.schedule_at e ~at:Time.zero (fun () -> order := "b" :: !order))));
  Engine.run e;
  Alcotest.(check (list string)) "causal order" [ "a"; "b" ] (List.rev !order)

(* -- Topology --------------------------------------------------------------- *)

let test_topology_table1 () =
  let t = Topology.clustered ~z:6 ~n:2 in
  Alcotest.(check int) "nodes" (12 + 6) (Topology.n_nodes t);
  (* Oregon <-> Sydney RTT from Table 1. *)
  Alcotest.(check (float 0.01)) "O-S rtt" 161.0 (Topology.rtt_ms t ~a:0 ~b:10);
  Alcotest.(check (float 0.01)) "symmetric" 161.0 (Topology.rtt_ms t ~a:10 ~b:0);
  Alcotest.(check (float 0.01)) "intra" 0.5 (Topology.rtt_ms t ~a:0 ~b:1);
  Alcotest.(check (float 0.01)) "B-T bw" 79.0 (Topology.bw_mbps t ~a:6 ~b:8);
  Alcotest.(check bool) "same region" true (Topology.same_region t 0 1);
  Alcotest.(check bool) "diff region" false (Topology.same_region t 0 2);
  (* Client node of cluster 3 lives in region 3. *)
  Alcotest.(check int) "client region" 3 (Topology.region_of t (12 + 3))

let test_topology_validation () =
  Alcotest.check_raises "n_regions < 1 rejected"
    (Invalid_argument "Topology.of_paper: n_regions must be >= 1") (fun () ->
      ignore (Topology.of_paper ~n_regions:0 ~node_region:[||]));
  Alcotest.check_raises "node region out of range rejected"
    (Invalid_argument "Topology.of_paper: node region out of range") (fun () ->
      ignore (Topology.of_paper ~n_regions:2 ~node_region:[| 0; 2 |]));
  (* z > 6 now tiles the Table 1 matrix (DESIGN.md §17) instead of
     being rejected — suite_scale.ml covers the tiled numbers. *)
  let t = Topology.of_paper ~n_regions:7 ~node_region:[| 0; 6 |] in
  Alcotest.(check int) "tiled regions accepted" 7 (Topology.n_regions t)

(* -- Network ------------------------------------------------------------------ *)

type probe = { mutable arrivals : (int * int * Time.t) list }

let mk_net ?(jitter = 0.) ~z ~n () =
  let engine = Engine.create () in
  let topo = Topology.clustered ~z ~n in
  let p = { arrivals = [] } in
  let net =
    Network.create ~engine ~topo ~jitter_ms:jitter
      ~deliver:(fun ~src ~dst _msg -> p.arrivals <- (src, dst, Engine.now engine) :: p.arrivals)
      ()
  in
  (engine, net, p)

let test_network_latency () =
  let engine, net, p = mk_net ~z:2 ~n:1 () in
  (* Oregon (node 0) -> Iowa (node 1): one-way = 19 ms + transmission. *)
  Network.send net ~src:0 ~dst:1 ~size:250 ();
  Engine.run engine;
  match p.arrivals with
  | [ (0, 1, t) ] ->
      let ms = Time.to_ms_f t in
      Alcotest.(check bool) (Printf.sprintf "arrival ~19ms (got %.3f)" ms) true
        (ms >= 19.0 && ms < 19.2)
  | _ -> Alcotest.fail "expected one arrival"

let test_network_bandwidth_queueing () =
  let engine, net, p = mk_net ~z:2 ~n:1 () in
  (* Two 1 MB messages Oregon -> Iowa share the 669 Mbit/s uplink: the
     second's arrival is one transmission time (~12 ms) after the
     first. *)
  Network.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Network.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Engine.run engine;
  match List.rev p.arrivals with
  | [ (_, _, t1); (_, _, t2) ] ->
      let tx_ms = 1_000_000. *. 8. /. 669. /. 1000. in
      let gap = Time.to_ms_f (Time.sub t2 t1) in
      Alcotest.(check bool)
        (Printf.sprintf "gap ~%.2fms (got %.2f)" tx_ms gap)
        true
        (abs_float (gap -. tx_ms) < 0.5)
  | _ -> Alcotest.fail "expected two arrivals"

let test_network_parallel_uplinks () =
  (* Uplinks to different regions do not queue behind each other. *)
  let engine, net, p = mk_net ~z:3 ~n:1 () in
  Network.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Network.send net ~src:0 ~dst:2 ~size:250 ();
  Engine.run engine;
  let t_small =
    List.find_map (fun (_, d, t) -> if d = 2 then Some t else None) p.arrivals |> Option.get
  in
  (* Montreal one-way is 32.5 ms; the small message must not wait for
     the 1 MB transfer on the Iowa pipe. *)
  Alcotest.(check bool) "no cross-pipe queueing" true (Time.to_ms_f t_small < 33.0)

let test_network_crash_and_drop () =
  let engine, net, p = mk_net ~z:2 ~n:2 () in
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* to crashed: dropped *)
  Network.send net ~src:1 ~dst:0 ~size:100 ();   (* from crashed: dropped *)
  Network.add_drop_rule net (fun ~src ~dst -> src = 0 && dst = 2);
  Network.send net ~src:0 ~dst:2 ~size:100 ();   (* dropped by rule *)
  Network.send net ~src:0 ~dst:3 ~size:100 ();   (* delivered *)
  Engine.run engine;
  Alcotest.(check int) "only one delivery" 1 (List.length p.arrivals);
  Alcotest.(check int) "dropped counted" 1 (Rdb_sim.Stats.dropped_msgs (Network.stats net))

let test_network_partition () =
  let engine, net, p = mk_net ~z:2 ~n:1 () in
  Network.partition_regions net ~ra:0 ~rb:1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();
  Network.send net ~src:1 ~dst:0 ~size:100 ();
  Engine.run engine;
  Alcotest.(check int) "partitioned" 0 (List.length p.arrivals)

let test_network_stats_local_global () =
  let engine, net, _ = mk_net ~z:2 ~n:2 () in
  Network.send net ~src:0 ~dst:1 ~size:100 ();  (* same region *)
  Network.send net ~src:0 ~dst:2 ~size:200 ();  (* cross region *)
  Engine.run engine;
  let s = Network.stats net in
  Alcotest.(check int) "local" 1 (Rdb_sim.Stats.local_msgs s);
  Alcotest.(check int) "global" 1 (Rdb_sim.Stats.global_msgs s);
  Alcotest.(check int) "local bytes" 100 (Rdb_sim.Stats.local_bytes s);
  Alcotest.(check int) "global bytes" 200 (Rdb_sim.Stats.global_bytes s)

(* -- Network fault reversibility (the chaos substrate) ------------------ *)

let test_network_recover_and_clear_rules () =
  let engine, net, p = mk_net ~z:2 ~n:2 () in
  Network.crash net 1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();
  (* dst-crash is checked at delivery time, so drain the in-flight
     message while the node is still down *)
  Engine.run engine;
  Network.recover net 1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* delivered again *)
  Network.add_drop_rule net ~label:"blackout" (fun ~src ~dst:_ -> src = 0);
  Network.send net ~src:0 ~dst:2 ~size:100 ();   (* dropped by rule *)
  Network.clear_drop_rules net;
  Network.send net ~src:0 ~dst:2 ~size:100 ();   (* delivered again *)
  Engine.run engine;
  Alcotest.(check int) "delivery restored after recover and clear" 2
    (List.length p.arrivals)

let test_network_partition_heal () =
  let engine, net, p = mk_net ~z:2 ~n:1 () in
  Network.partition_regions net ~ra:0 ~rb:1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();
  (* heal_regions is the exact inverse, insensitive to argument order *)
  Network.heal_regions net ~ra:1 ~rb:0;
  Network.send net ~src:0 ~dst:1 ~size:100 ();
  Network.send net ~src:1 ~dst:0 ~size:100 ();
  Engine.run engine;
  Alcotest.(check int) "both directions flow after heal" 2 (List.length p.arrivals)

let test_network_link_flap () =
  let engine, net, p = mk_net ~z:2 ~n:2 () in
  Network.sever_link net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* dropped *)
  Network.send net ~src:1 ~dst:0 ~size:100 ();   (* reverse direction unaffected *)
  Network.restore_link net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* delivered *)
  Engine.run engine;
  Alcotest.(check int) "sever is directed and restorable" 2 (List.length p.arrivals)

let test_network_loss_and_dup () =
  let engine, net, p = mk_net ~z:2 ~n:2 () in
  Network.set_link_loss net ~src:0 ~dst:1 ~p:1.0;
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* certainly lost *)
  Network.set_link_loss net ~src:0 ~dst:1 ~p:0.; (* p<=0 removes the rule *)
  Network.send net ~src:0 ~dst:1 ~size:100 ();   (* delivered *)
  Network.set_link_dup net ~src:2 ~dst:3 ~p:1.0;
  Network.send net ~src:2 ~dst:3 ~size:100 ();   (* delivered twice *)
  Network.set_link_dup net ~src:2 ~dst:3 ~p:0.;
  Network.send net ~src:2 ~dst:3 ~size:100 ();   (* delivered once *)
  Engine.run engine;
  let deliveries_to d =
    List.length (List.filter (fun (_, d', _) -> d' = d) p.arrivals)
  in
  Alcotest.(check int) "p=1 loss drops, p=0 clears" 1 (deliveries_to 1);
  Alcotest.(check int) "p=1 dup doubles, p=0 clears" 3 (deliveries_to 3);
  Alcotest.(check int) "lost message counted as dropped" 1
    (Rdb_sim.Stats.dropped_msgs (Network.stats net))

(* -- CPU ------------------------------------------------------------------------- *)

let test_cpu_stage_serialization () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine ~n_nodes:2 () in
  let log = ref [] in
  (* Two 10 ms jobs on the same stage serialize; a job on another stage
     (or node) runs in parallel. *)
  Cpu.charge cpu ~node:0 ~stage:Cpu.Execute ~cost:(Time.ms 10) (fun () ->
      log := ("a", Engine.now engine) :: !log);
  Cpu.charge cpu ~node:0 ~stage:Cpu.Execute ~cost:(Time.ms 10) (fun () ->
      log := ("b", Engine.now engine) :: !log);
  Cpu.charge cpu ~node:0 ~stage:Cpu.Worker ~cost:(Time.ms 10) (fun () ->
      log := ("w", Engine.now engine) :: !log);
  Cpu.charge cpu ~node:1 ~stage:Cpu.Execute ~cost:(Time.ms 10) (fun () ->
      log := ("n1", Engine.now engine) :: !log);
  Engine.run engine;
  let at name = List.assoc name !log in
  Alcotest.(check int64) "first exec at 10ms" (Time.ms 10) (at "a");
  Alcotest.(check int64) "second exec serialized at 20ms" (Time.ms 20) (at "b");
  Alcotest.(check int64) "other stage parallel" (Time.ms 10) (at "w");
  Alcotest.(check int64) "other node parallel" (Time.ms 10) (at "n1")

let test_cpu_fast_path_and_accounting () =
  let engine = Engine.create () in
  let cpu = Cpu.create ~engine ~n_nodes:1 () in
  let ran = ref false in
  (* Tiny cost on an idle stage runs synchronously. *)
  Cpu.charge cpu ~node:0 ~stage:Cpu.Worker ~cost:(Time.us 1) (fun () -> ran := true);
  Alcotest.(check bool) "sync fast path" true !ran;
  Cpu.charge cpu ~node:0 ~stage:Cpu.Worker ~cost:(Time.ms 5) (fun () -> ());
  Engine.run engine;
  Alcotest.(check (float 0.0001) ) "busy accounting" 0.005001
    (Cpu.busy_sec cpu ~node:0 ~stage:Cpu.Worker)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap fifo stress", `Quick, test_heap_fifo_stress);
    ("engine ordering", `Quick, test_engine_ordering_and_time);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine run_until", `Quick, test_engine_run_until);
    ("engine nested scheduling", `Quick, test_engine_nested_scheduling);
    ("topology table1", `Quick, test_topology_table1);
    ("topology validation", `Quick, test_topology_validation);
    ("network latency", `Quick, test_network_latency);
    ("network bandwidth queueing", `Quick, test_network_bandwidth_queueing);
    ("network parallel uplinks", `Quick, test_network_parallel_uplinks);
    ("network crash and drop", `Quick, test_network_crash_and_drop);
    ("network partition", `Quick, test_network_partition);
    ("network recover and clear rules", `Quick, test_network_recover_and_clear_rules);
    ("network partition heal", `Quick, test_network_partition_heal);
    ("network link flap", `Quick, test_network_link_flap);
    ("network loss and duplication", `Quick, test_network_loss_and_dup);
    ("network stats", `Quick, test_network_stats_local_global);
    ("cpu stage serialization", `Quick, test_cpu_stage_serialization);
    ("cpu fast path", `Quick, test_cpu_fast_path_and_accounting);
  ]
  @ qsuite [ prop_heap_sorted ]

(* -- WAN egress cap ----------------------------------------------------- *)

let test_wan_egress_serialization () =
  (* With an aggregate WAN cap, two large messages to *different*
     regions serialize through the shared egress pipe; local traffic
     is unaffected. *)
  let engine = Engine.create () in
  let topo = Topology.clustered ~z:3 ~n:2 in
  let arrivals = ref [] in
  let net =
    Network.create ~wan_egress_mbps:100. ~engine ~topo ~jitter_ms:0.
      ~deliver:(fun ~src:_ ~dst _ -> arrivals := (dst, Engine.now engine) :: !arrivals)
      ()
  in
  (* 1 MB to Iowa (node 2) and 1 MB to Montreal (node 4): each takes
     80 ms through the 100 Mbit/s aggregate pipe, so the second cannot
     depart before 160 ms. *)
  Network.send net ~src:0 ~dst:2 ~size:1_000_000 ();
  Network.send net ~src:0 ~dst:4 ~size:1_000_000 ();
  (* A local message is not throttled by the WAN pipe. *)
  Network.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Engine.run engine;
  let at dst = List.assoc dst !arrivals in
  Alcotest.(check bool) "second WAN msg serialized behind first" true
    (Time.to_ms_f (at 4) > 160.);
  Alcotest.(check bool) "local msg unaffected by WAN cap" true (Time.to_ms_f (at 1) < 5.)

let test_wan_egress_disabled () =
  let engine = Engine.create () in
  let topo = Topology.clustered ~z:3 ~n:1 in
  let arrivals = ref [] in
  let net =
    Network.create ~engine ~topo ~jitter_ms:0.
      ~deliver:(fun ~src:_ ~dst _ -> arrivals := (dst, Engine.now engine) :: !arrivals)
      ()
  in
  Network.send net ~src:0 ~dst:1 ~size:1_000_000 ();
  Network.send net ~src:0 ~dst:2 ~size:1_000_000 ();
  Engine.run engine;
  (* Without the cap, the two transfers ride independent region pipes
     in parallel: Montreal (371 Mbit/s ~ 21.6ms + 32.5ms delay). *)
  Alcotest.(check bool) "parallel without cap" true
    (Time.to_ms_f (List.assoc 2 !arrivals) < 60.)

(* -- Stats drop accounting ---------------------------------------------- *)

let test_stats_count_dropped () =
  let s = Rdb_sim.Stats.create () in
  let before = Rdb_sim.Stats.snapshot s in
  Rdb_sim.Stats.count_sent s ~local:true ~size:100;
  Rdb_sim.Stats.count_dropped s ~size:70;
  Rdb_sim.Stats.count_dropped s ~size:30;
  Alcotest.(check int) "dropped msgs" 2 (Rdb_sim.Stats.dropped_msgs s);
  Alcotest.(check int) "dropped bytes" 100 (Rdb_sim.Stats.dropped_bytes s);
  let after = Rdb_sim.Stats.snapshot s in
  Alcotest.(check int) "snapshot d_msgs" 2 after.Rdb_sim.Stats.d_msgs;
  Alcotest.(check int) "snapshot d_bytes" 100 after.Rdb_sim.Stats.d_bytes;
  let w = Rdb_sim.Stats.diff ~after ~before in
  Alcotest.(check int) "diff d_msgs" 2 w.Rdb_sim.Stats.d_msgs;
  Alcotest.(check int) "diff d_bytes" 100 w.Rdb_sim.Stats.d_bytes;
  Alcotest.(check int) "diff l_msgs" 1 w.Rdb_sim.Stats.l_msgs

let test_network_dropped_bytes () =
  (* Drops observed through the network layer carry their sizes into
     the same counters. *)
  let engine, net, _ = mk_net ~z:2 ~n:2 () in
  Network.add_drop_rule net (fun ~src ~dst -> src = 0 && dst = 2);
  Network.send net ~src:0 ~dst:2 ~size:321 ();
  Engine.run engine;
  Alcotest.(check int) "dropped bytes via network" 321
    (Rdb_sim.Stats.dropped_bytes (Network.stats net))

let suite =
  suite
  @ [
      ("network wan egress serialization", `Quick, test_wan_egress_serialization);
      ("network wan egress disabled", `Quick, test_wan_egress_disabled);
      ("stats count_dropped", `Quick, test_stats_count_dropped);
      ("network dropped bytes", `Quick, test_network_dropped_bytes);
    ]
