(* PRNG substrate tests: reference outputs, determinism, and the
   statistical properties the YCSB workload relies on. *)

open Rdb_prng

(* Reference outputs of the public-domain splitmix64.c with seed 0:
   first three outputs. *)
let test_splitmix_reference () =
  let g = Splitmix64.create 0L in
  Alcotest.(check int64) "out1" 0xE220A8397B1DCDAFL (Splitmix64.next g);
  Alcotest.(check int64) "out2" 0x6E789E6AA1B965F4L (Splitmix64.next g);
  Alcotest.(check int64) "out3" 0x06C45D188009454FL (Splitmix64.next g)

let test_splitmix_split_seeds_differ () =
  let a = Splitmix64.split_seed ~seed:42L ~index:0 in
  let b = Splitmix64.split_seed ~seed:42L ~index:1 in
  Alcotest.(check bool) "distinct" true (not (Int64.equal a b));
  Alcotest.(check int64) "stable" a (Splitmix64.split_seed ~seed:42L ~index:0)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create 8L in
  Alcotest.(check bool) "different seed differs" true
    (not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 c)))

let test_rng_copy_and_split () =
  let a = Rng.create 9L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  let s1 = Rng.split a ~index:1 and s2 = Rng.split a ~index:2 in
  Alcotest.(check bool) "split streams differ" true
    (not (Int64.equal (Rng.next_int64 s1) (Rng.next_int64 s2)))

let test_rng_ranges () =
  let g = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let f = Rng.float g in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_rng_float_mean () =
  let g = Rng.create 2L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_shuffle_permutation () =
  let g = Rng.create 3L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_exponential_mean () =
  let g = Rng.create 4L in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential g ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 3" true (abs_float (mean -. 3.0) < 0.1)

(* -- Zipf ---------------------------------------------------------------- *)

let test_zipf_bounds () =
  let z = Zipf.create ~theta:0.99 1000 in
  let g = Rng.create 5L in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z g in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  (* With theta = 0.99, rank 0 must be drawn far more often than a
     mid-range rank; and the head must dominate. *)
  let z = Zipf.create ~theta:0.99 10_000 in
  let g = Rng.create 6L in
  let counts = Array.make 10_000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Zipf.sample z g in
    counts.(v) <- counts.(v) + 1
  done;
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 100) in
  Alcotest.(check bool) "rank 0 hot" true (counts.(0) > counts.(5000) * 10);
  Alcotest.(check bool)
    "top-1% gets > 30% of draws" true
    (float_of_int head /. float_of_int n > 0.3)

let test_zipf_scrambled_spreads () =
  (* Scrambling must spread the hot ranks over the key space: the most
     popular *key* should no longer be key 0. *)
  let z = Zipf.create ~theta:0.99 10_000 in
  let g = Rng.create 7L in
  let counts = Array.make 10_000 0 in
  for _ = 1 to 50_000 do
    let v = Zipf.sample_scrambled z g in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10_000);
    counts.(v) <- counts.(v) + 1
  done;
  let max_key = ref 0 in
  Array.iteri (fun k c -> if c > counts.(!max_key) then max_key := k) counts;
  Alcotest.(check bool) "hot key scrambled away from 0" true (!max_key <> 0)

let test_zipf_exact_matches_closed_form_cdf () =
  (* For n <= 64 the sampler must follow the closed-form Zipf law
     p_k = k^-theta / zeta(n, theta) — not YCSB's large-n approximation,
     which drifts by up to ~13% per rank in this regime.  Validate the
     empirical pmf and CDF across several thetas and sizes. *)
  let zeta n theta =
    let acc = ref 0. in
    for i = 1 to n do
      acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
    done;
    !acc
  in
  List.iter
    (fun (n, theta) ->
      let z = Zipf.create ~theta n in
      let g = Rng.create 11L in
      let draws = 200_000 in
      let counts = Array.make n 0 in
      for _ = 1 to draws do
        let k = Zipf.sample z g in
        counts.(k) <- counts.(k) + 1
      done;
      let zn = zeta n theta in
      let cum_emp = ref 0. and cum_exp = ref 0. and ks = ref 0. in
      for k = 0 to n - 1 do
        let expect = (1. /. Float.pow (float_of_int (k + 1)) theta) /. zn in
        let got = float_of_int counts.(k) /. float_of_int draws in
        (* Combined absolute + relative tolerance: generous enough for
           binomial noise at 200k draws, far below the approximation's
           former drift. *)
        Alcotest.(check bool)
          (Printf.sprintf "pmf n=%d theta=%.2f rank %d (got %.5f expect %.5f)" n theta k got
             expect)
          true
          (abs_float (got -. expect) <= 0.004 +. (0.04 *. expect));
        cum_emp := !cum_emp +. got;
        cum_exp := !cum_exp +. expect;
        ks := Float.max !ks (abs_float (!cum_emp -. !cum_exp))
      done;
      Alcotest.(check bool)
        (Printf.sprintf "CDF deviation n=%d theta=%.2f (%.5f)" n theta !ks)
        true (!ks < 0.01))
    [ (4, 0.99); (8, 0.99); (16, 0.8); (33, 0.2); (64, 0.99); (64, 0.5) ]

let prop_zipf_theta_zero_near_uniform =
  QCheck.Test.make ~name:"zipf theta=0 is near-uniform" ~count:5 QCheck.small_nat (fun seed ->
      let z = Zipf.create ~theta:0.0 100 in
      let g = Rng.create (Int64.of_int (seed + 1)) in
      let counts = Array.make 100 0 in
      let n = 50_000 in
      for _ = 1 to n do
        let v = Zipf.sample z g in
        counts.(v) <- counts.(v) + 1
      done;
      (* Every bucket within 3x of the uniform expectation. *)
      Array.for_all (fun c -> c < 3 * n / 100) counts)

let suite =
  [
    ("splitmix64 reference", `Quick, test_splitmix_reference);
    ("splitmix64 split seeds", `Quick, test_splitmix_split_seeds_differ);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng copy/split", `Quick, test_rng_copy_and_split);
    ("rng ranges", `Quick, test_rng_ranges);
    ("rng float mean", `Quick, test_rng_float_mean);
    ("rng shuffle", `Quick, test_shuffle_permutation);
    ("rng exponential", `Quick, test_exponential_mean);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf scrambled", `Quick, test_zipf_scrambled_spreads);
    ("zipf exact small-n cdf", `Quick, test_zipf_exact_matches_closed_form_cdf);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_zipf_theta_zero_near_uniform ]
