(* Schedule-exploration checker tests: artifact determinism, shrinker
   idempotence, one pinned mutant-catch per protocol, and a small
   unmutated clean sweep.  The checker is strictly sequential (the
   mutation/evidence hooks are process-global), which Alcotest's
   in-order runner already guarantees. *)

module Check = Rdb_check.Check
module Perturb = Rdb_check.Perturb
module Scenario = Rdb_experiments.Scenario
module Time = Rdb_sim.Time

(* -- artifact determinism ------------------------------------------------- *)

let test_artifact_bytes_deterministic () =
  (* Same scenario, seed, and mutation: two independent explorations
     must produce byte-identical violation artifacts. *)
  let explore () =
    match Check.mutant_scenario "pbft-prepare-quorum" with
    | None -> Alcotest.fail "pbft-prepare-quorum not registered"
    | Some (s, provoke) ->
        (match Check.explore ~budget:2 ~seed:1 ~mutation:"pbft-prepare-quorum" ?provoke s with
        | Some ce -> Check.counterexample_to_string ce
        | None -> Alcotest.fail "pbft-prepare-quorum escaped a 2-schedule budget")
  in
  let a = explore () and b = explore () in
  Alcotest.(check string) "identical artifact bytes" a b;
  (* And the artifact round-trips through its own parser. *)
  match Check.counterexample_of_string a with
  | Error e -> Alcotest.fail e
  | Ok ce -> Alcotest.(check string) "round-trip" a (Check.counterexample_to_string ce)

(* -- shrinker ------------------------------------------------------------- *)

let perturbations =
  [
    Perturb.Delay { nth = 3; extra = Time.ms 40 };
    Perturb.Defer { nth = 11 };
    Perturb.Swap { nth = 5 };
    Perturb.Delay { nth = 90; extra = Time.ms 120 };
    Perturb.Defer { nth = 200 };
    Perturb.Swap { nth = 77 };
    Perturb.Delay { nth = 300; extra = Time.ms 5 };
  ]

let test_ddmin_idempotent () =
  (* Failure needs both the nth=11 defer and the nth=77 swap. *)
  let test subset =
    List.exists (function Perturb.Defer { nth = 11 } -> true | _ -> false) subset
    && List.exists (function Perturb.Swap { nth = 77 } -> true | _ -> false) subset
  in
  let once, _ = Check.ddmin ~test perturbations in
  Alcotest.(check int) "1-minimal" 2 (List.length once);
  Alcotest.(check bool) "minimal subset still fails" true (test once);
  let twice, reruns = Check.ddmin ~test once in
  Alcotest.(check (list string)) "idempotent"
    (List.map Perturb.to_string once)
    (List.map Perturb.to_string twice);
  (* Shrinking an already-minimal list only spends the probes that
     confirm minimality. *)
  Alcotest.(check bool) "cheap on minimal input" true (reruns <= 8)

let test_ddmin_single_cause () =
  let test subset =
    List.exists (function Perturb.Delay { nth = 90; _ } -> true | _ -> false) subset
  in
  let minimal, _ = Check.ddmin ~test perturbations in
  match minimal with
  | [ Perturb.Delay { nth = 90; _ } ] -> ()
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected the single cause, got [%s]"
           (String.concat "; " (List.map Perturb.to_string l)))

(* -- pinned mutant catches ------------------------------------------------ *)

(* One mutation per protocol, each caught within a small budget and
   shrunk to a 1-minimal (here: empty — the violation is
   schedule-independent) perturbation list.  The full seven-mutation
   matrix runs in CI via `rdb_cli check --mutants`. *)
let catch mutation () =
  match Check.mutant_scenario mutation with
  | None -> Alcotest.fail (mutation ^ " not registered")
  | Some (s, provoke) -> (
      match Check.explore ~budget:4 ~seed:1 ~mutation ?provoke s with
      | None -> Alcotest.fail (mutation ^ " escaped a 4-schedule budget")
      | Some ce ->
          Alcotest.(check bool) "violation reported" true (ce.Check.violation.invariant <> "");
          Alcotest.(check int) "caught unperturbed (schedule 0)" 0 ce.Check.schedule;
          Alcotest.(check int) "shrunk to empty" 0 (List.length ce.Check.perturbations))

let test_replay_reproduces () =
  match Check.mutant_scenario "hotstuff-qc-quorum" with
  | None -> Alcotest.fail "hotstuff-qc-quorum not registered"
  | Some (s, provoke) -> (
      match Check.explore ~budget:4 ~seed:1 ~mutation:"hotstuff-qc-quorum" ?provoke s with
      | None -> Alcotest.fail "hotstuff-qc-quorum escaped"
      | Some ce ->
          let outcome = Check.replay ce in
          Alcotest.(check bool) "replay reproduces" true outcome.Check.reproduced;
          Alcotest.(check (option bool)) "deterministic trace digest" (Some true)
            outcome.Check.digest_match)

(* -- unmutated clean sweep ------------------------------------------------ *)

let test_clean_sweep_small () =
  List.iter
    (fun p ->
      let s = Check.default_scenario ~seed:1 p in
      match Check.explore ~budget:2 ~seed:1 s with
      | None -> ()
      | Some ce ->
          Alcotest.fail
            (Printf.sprintf "%s violated %s: %s" (Scenario.proto_name p)
               ce.Check.violation.invariant ce.Check.violation.detail))
    Scenario.all_protocols

let suite =
  [
    ("ddmin idempotent", `Quick, test_ddmin_idempotent);
    ("ddmin single cause", `Quick, test_ddmin_single_cause);
    ("artifact determinism", `Slow, test_artifact_bytes_deterministic);
    ("mutant catch pbft", `Slow, catch "pbft-prepare-quorum");
    ("mutant catch geobft", `Slow, catch "geobft-share-stale");
    ("mutant catch zyzzyva", `Slow, catch "zyzzyva-spec-history");
    ("mutant catch hotstuff", `Slow, catch "hotstuff-qc-quorum");
    ("mutant catch steward", `Slow, catch "steward-certify-quorum");
    ("replay reproduces", `Slow, test_replay_reproduces);
    ("clean sweep small", `Slow, test_clean_sweep_small);
  ]
