(* Consensus-path tracing: determinism, aggregation, Chrome JSON.

   The digest is the determinism witness of the whole stack: it folds
   every network / CPU / phase event into a streaming SHA-256, so two
   runs with the same seed must agree byte-for-byte on the entire
   event stream — across all five protocols, and under chaos fault
   injection. *)

module Runner = Rdb_experiments.Runner
module Config = Rdb_types.Config
module Report = Rdb_fabric.Report
module Trace = Rdb_trace.Trace
module Time = Rdb_sim.Time

let small_cfg ?(seed = 1) () = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed ()
let small_windows = { Runner.warmup = Time.ms 200; measure = Time.ms 600 }

let digest_of ?(windows = small_windows) ?fault ?keep_events ?(seed = 1) proto =
  let tracer = Trace.create ?keep_events () in
  let scenario = Rdb_experiments.Scenario.make ~windows ?fault proto (small_cfg ~seed ()) in
  let r = Runner.run ~tracer scenario in
  match r.Report.trace with
  | Some s -> (s, tracer)
  | None -> Alcotest.fail "report carries no trace summary"

let hex64 = Alcotest.testable Fmt.string String.equal

let test_digest_deterministic proto () =
  let s1, _ = digest_of proto in
  let s2, _ = digest_of proto in
  Alcotest.(check int) "same event count" s1.Trace.events s2.Trace.events;
  Alcotest.check hex64 "same digest" s1.Trace.digest_hex s2.Trace.digest_hex;
  Alcotest.(check int) "digest is 64 hex chars" 64 (String.length s1.Trace.digest_hex);
  Alcotest.(check bool) "digest differs across seeds" false
    (let s3, _ = digest_of ~seed:2 proto in
     String.equal s1.Trace.digest_hex s3.Trace.digest_hex)

let test_chaos_seed_changes_digest () =
  (* Same chaos seed: identical fault timeline, identical digest.
     Different chaos seed: different faults, different event stream.
     The horizon must leave room past the planner's recovery tail for
     fault windows to be admitted (tail = horizon/2 here), so this test
     runs a longer clock than the others. *)
  let windows = { Runner.warmup = Time.ms 500; measure = Time.ms 5500 } in
  let a1, _ = digest_of ~windows ~fault:(Runner.Chaos 3) Runner.Geobft in
  let a2, _ = digest_of ~windows ~fault:(Runner.Chaos 3) Runner.Geobft in
  let b, _ = digest_of ~windows ~fault:(Runner.Chaos 4) Runner.Geobft in
  Alcotest.check hex64 "chaos runs are seed-deterministic" a1.Trace.digest_hex
    a2.Trace.digest_hex;
  Alcotest.(check bool) "different chaos seed, different digest" false
    (String.equal a1.Trace.digest_hex b.Trace.digest_hex)

let test_phase_breakdown () =
  let s, _ = digest_of Runner.Geobft in
  let phase_names = List.map (fun (r : Trace.phase_row) -> r.Trace.phase) s.Trace.phases in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "phase %S present" p) true (List.mem p phase_names))
    [ "propose"; "prepare"; "commit"; "certify-share"; "execute" ];
  List.iter
    (fun (r : Trace.phase_row) ->
      Alcotest.(check bool) (r.Trace.phase ^ " count > 0") true (r.Trace.count > 0);
      Alcotest.(check bool) (r.Trace.phase ^ " avg <= max") true (r.Trace.avg_ms <= r.Trace.max_ms))
    s.Trace.phases;
  Alcotest.(check bool) "decisions recorded" true (s.Trace.decisions > 0);
  Alcotest.(check bool) "local traffic traced" true (s.Trace.net_local > 0);
  Alcotest.(check bool) "global traffic traced" true (s.Trace.net_global > 0);
  (* GeoBFT's point: global messages are a small fraction of local. *)
  Alcotest.(check bool) "geo-scale locality" true (s.Trace.net_global < s.Trace.net_local)

let test_chrome_json () =
  let _, tracer = digest_of ~keep_events:true Runner.Geobft in
  let path = Filename.temp_file "rdb_trace" ".json" in
  let oc = open_out path in
  Trace.write_chrome_json tracer oc;
  close_out oc;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "events were retained" true (Trace.events_kept tracer > 0);
  Alcotest.(check bool) "object prefix" true
    (String.length s > 16 && String.sub s 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) "closing suffix" true (has "],\"displayTimeUnit\":\"ms\"}");
  Alcotest.(check bool) "track-name metadata" true (has "\"ph\":\"M\"");
  Alcotest.(check bool) "complete spans" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "instants" true (has "\"ph\":\"i\"");
  Alcotest.(check bool) "phase category" true (has "\"cat\":\"phase\"");
  Alcotest.(check bool) "net category" true (has "\"cat\":\"net\"");
  Alcotest.(check bool) "cpu category" true (has "\"cat\":\"cpu\"");
  (* Balanced braces — cheap structural sanity without a JSON parser
     (all strings in the writer are escaped, so no brace appears in a
     string literal). *)
  let depth = ref 0 in
  String.iter (fun c -> if c = '{' then incr depth else if c = '}' then decr depth) s;
  Alcotest.(check int) "balanced braces" 0 !depth

let test_keep_events_required () =
  let tracer = Trace.create () in
  Alcotest.check_raises "write without keep_events"
    (Invalid_argument "Trace.write_chrome_json: tracer was created without ~keep_events:true")
    (fun () -> Trace.write_chrome_json tracer stdout)

let test_off_by_default () =
  (* No tracer: the deployment runs exactly as before (tier-1 behavior
     is the digest test's baseline; here just assert the report carries
     no trace summary). *)
  let r = Runner.run (Rdb_experiments.Scenario.make ~windows:small_windows Runner.Pbft (small_cfg ())) in
  Alcotest.(check bool) "no trace summary when off" true (r.Report.trace = None)

let suite =
  List.map
    (fun p ->
      ( Printf.sprintf "digest deterministic (%s)" (Runner.proto_name p),
        `Quick,
        test_digest_deterministic p ))
    Runner.all_protocols
  @ [
      ("chaos seed changes digest", `Slow, test_chaos_seed_changes_digest);
      ("phase breakdown sanity", `Quick, test_phase_breakdown);
      ("chrome trace-event json", `Quick, test_chrome_json);
      ("keep_events required for json", `Quick, test_keep_events_required);
      ("tracing off by default", `Quick, test_off_by_default);
    ]
