(* Chaos seed sweep: every protocol absorbs its full fault envelope
   across a range of planner seeds with the continuous invariant
   monitor armed.  Any violation raises Chaos.Violation with the
   offending seed and timeline in the payload, so a red run is always
   reproducible with `resilientdb-cli run --fault chaos:SEED`.

   The default seed set is deliberately small so the sweep rides along
   in tier-1 `dune runtest` (alias chaos-sweep); set CHAOS_SEEDS=LO-HI
   (e.g. CHAOS_SEEDS=1-16) for the wider validation sweep. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Chaos = Rdb_chaos.Chaos
module Runner = Rdb_experiments.Runner
module Report = Rdb_fabric.Report

let cfg () = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 ()
let windows = { Runner.warmup = Time.sec 1; measure = Time.sec 11 }

let seeds () =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | None -> [ 1; 2; 3; 4 ]
  | Some s -> (
      match String.split_on_char '-' (String.trim s) with
      | [ lo; hi ] -> (
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo <= hi -> List.init (hi - lo + 1) (fun i -> lo + i)
          | _ -> failwith "CHAOS_SEEDS must be LO-HI")
      | [ one ] -> [ int_of_string one ]
      | _ -> failwith "CHAOS_SEEDS must be LO-HI")

let () =
  let failures = ref 0 in
  let seeds = seeds () in
  List.iter
    (fun proto ->
      List.iter
        (fun seed ->
          let name = Runner.proto_name proto in
          match Runner.run_proto proto ~windows ~fault:(Runner.Chaos seed) (cfg ()) with
          | report ->
              if report.Report.completed_txns = 0 then begin
                incr failures;
                Printf.printf "FAIL %-8s seed %2d: no progress under chaos\n%!" name seed
              end
              else
                Printf.printf
                  "ok   %-8s seed %2d: %6d txns | st %d | holes %d | rtx %d\n%!" name seed
                  report.Report.completed_txns report.Report.state_transfers
                  report.Report.holes_filled report.Report.retransmissions
          | exception Chaos.Violation msg ->
              incr failures;
              Printf.printf "FAIL %-8s seed %2d:\n%s\n%!" name seed msg)
        seeds)
    Runner.all_protocols;
  if !failures > 0 then begin
    Printf.printf "%d chaos sweep failure(s)\n%!" !failures;
    exit 1
  end
  else Printf.printf "chaos sweep clean: %d protocols x %d seeds\n%!" 5 (List.length seeds)
