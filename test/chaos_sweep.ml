(* Chaos seed sweep: every protocol absorbs its full fault envelope
   across a range of planner seeds with the continuous invariant
   monitor armed.  Any violation raises Chaos.Violation with the
   offending seed and timeline in the payload, so a red run is always
   reproducible with `resilientdb-cli run --fault chaos:SEED`.

   The protocol x seed grid is submitted through the multicore sweep
   engine (the Chaos.Violation of a failing run surfaces as that
   scenario's [Error] outcome, in canonical order).  The default seed
   set is deliberately small so the sweep rides along in tier-1 `dune
   runtest` (alias chaos-sweep); set CHAOS_SEEDS=LO-HI (e.g.
   CHAOS_SEEDS=1-16) for the wider validation sweep, and CHAOS_JOBS=N
   to override the worker-domain count. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Scenario = Rdb_experiments.Scenario
module Sweep = Rdb_sweep.Sweep
module Report = Rdb_fabric.Report

let cfg () = Config.make ~z:2 ~n:4 ~batch_size:20 ~client_inflight:8 ~seed:1 ()
let windows = { Scenario.warmup = Time.sec 1; measure = Time.sec 11 }

(* Seeds every protocol runs.  HotStuff additionally runs
   [hotstuff_extra]: the seeds whose crash/link-outage timelines used
   to outrun the bounded ledger archive before state transfer was
   wired through lib/recovery (DESIGN.md §17) — kept in tier-1 as the
   regression gate for that fix.  CHAOS_SEEDS=LO-HI replaces both
   lists with an explicit range for the wide validation sweep. *)
let hotstuff_extra = [ 6; 8; 9; 12; 13; 14; 16 ]

let seeds () =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | None -> [ 1; 2; 3; 4 ]
  | Some s -> (
      match String.split_on_char '-' (String.trim s) with
      | [ lo; hi ] -> (
          match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo <= hi -> List.init (hi - lo + 1) (fun i -> lo + i)
          | _ -> failwith "CHAOS_SEEDS must be LO-HI")
      | [ one ] -> [ int_of_string one ]
      | _ -> failwith "CHAOS_SEEDS must be LO-HI")

let () =
  let seeds = seeds () in
  let explicit_range = Sys.getenv_opt "CHAOS_SEEDS" <> None in
  let seeds_for proto =
    if (not explicit_range) && proto = Scenario.Hotstuff then seeds @ hotstuff_extra
    else seeds
  in
  let scenarios =
    List.concat_map
      (fun proto ->
        List.map
          (fun seed -> Scenario.make ~windows ~fault:(Scenario.Chaos seed) proto (cfg ()))
          (seeds_for proto))
      Scenario.all_protocols
  in
  let jobs =
    match Option.bind (Sys.getenv_opt "CHAOS_JOBS") int_of_string_opt with
    | Some j when j >= 1 -> j
    | _ -> Sweep.default_jobs ()
  in
  let results = Sweep.run ~jobs scenarios in
  let failures = ref 0 in
  List.iter
    (fun (r : Sweep.result) ->
      let s = r.Sweep.scenario in
      let name = Scenario.proto_name s.Scenario.proto in
      let seed = match s.Scenario.fault with Scenario.Chaos seed -> seed | _ -> -1 in
      match r.Sweep.outcome with
      | Ok report ->
          if report.Report.completed_txns = 0 then begin
            incr failures;
            Printf.printf "FAIL %-8s seed %2d: no progress under chaos\n%!" name seed
          end
          else
            Printf.printf "ok   %-8s seed %2d: %6d txns | st %d | holes %d | rtx %d\n%!" name seed
              report.Report.completed_txns report.Report.state_transfers
              report.Report.holes_filled report.Report.retransmissions
      | Error msg ->
          incr failures;
          Printf.printf "FAIL %-8s seed %2d:\n%s\n%!" name seed msg)
    results;
  if !failures > 0 then begin
    Printf.printf "%d chaos sweep failure(s)\n%!" !failures;
    exit 1
  end
  else
    Printf.printf "chaos sweep clean: %d protocols, %d scenarios (-j %d)\n%!"
      (List.length Scenario.all_protocols)
      (List.length scenarios) jobs
