(* Storage-engine tests: backend digest equivalence (the determinism
   contract of Storage.Backend), crash recovery of the persistent block
   store at every possible torn-write boundary, snapshot compaction and
   re-anchoring, and mem-vs-disk deployment equivalence end to end. *)

module Config = Rdb_types.Config
module Txn = Rdb_types.Txn
module Batch = Rdb_types.Batch
module App = Rdb_types.App
module Time = Rdb_sim.Time
module Keychain = Rdb_crypto.Keychain
module Kv = Rdb_storage.Kv
module Ledger = Rdb_ledger.Ledger

let kc = Keychain.create ~seed:"storage-suite" ~n_nodes:1

(* Small record space so full-state snapshots stay tiny and the
   every-byte truncation sweep stays fast. *)
let n_records = 64

(* Three writes per batch, distinct keys and values per batch, so every
   block produces a fixed-size log frame and a distinct state. *)
let write_batch i =
  let txns =
    Array.init 3 (fun j ->
        Txn.make ~key:((i * 3) + j) ~value:(Int64.of_int ((i * 31) + j + 1)) ~client_id:0 ())
  in
  Batch.create ~keychain:kc ~id:i ~cluster:0 ~origin:0 ~txns ~created:0L

let read_batch i =
  let txns =
    [|
      Txn.make ~op:Txn.Read ~key:i ~value:0L ~client_id:0 ();
      Txn.make ~op:Txn.Scan ~key:(i + 1) ~value:7L ~client_id:0 ();
    |]
  in
  Batch.create ~keychain:kc ~id:(1000 + i) ~cluster:0 ~origin:0 ~txns ~created:0L

(* -- filesystem helpers -------------------------------------------------- *)

let fresh_dir () =
  let f = Filename.temp_file "rdb-storage-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* The snapshot file only exists once the store compacted or
   re-anchored; copy it when present. *)
let copy_snapshot ~src ~dst =
  let s = Filename.concat src "snapshot.bin" in
  if Sys.file_exists s then write_file (Filename.concat dst "snapshot.bin") (read_file s)

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Reference trajectory: state digest after each block, computed on the
   in-memory backend.  [ref_digests.(h)] is the digest at height [h]. *)
let ref_digests ~blocks =
  let kv = Kv.memory ~n_records () in
  let out = Array.make (blocks + 1) (Kv.state_digest kv) in
  for i = 0 to blocks - 1 do
    ignore (Kv.apply kv (write_batch i));
    out.(i + 1) <- Kv.state_digest kv
  done;
  out

(* -- backend equivalence ------------------------------------------------- *)

let test_backend_digest_equivalence () =
  with_dir (fun dir ->
      let mem = Kv.memory ~n_records () in
      let disk = Kv.disk ~dir ~n_records () in
      Alcotest.(check string) "identical initial state" (Kv.state_digest mem)
        (Kv.state_digest disk);
      for i = 0 to 19 do
        let b = write_batch i in
        let rm = Kv.apply mem b and rd = Kv.apply disk b in
        Alcotest.(check string)
          (Printf.sprintf "result digest at block %d" i)
          rm.App.digest rd.App.digest;
        Alcotest.(check string)
          (Printf.sprintf "state digest at height %d" (i + 1))
          (Kv.state_digest mem) (Kv.state_digest disk)
      done;
      Alcotest.(check int) "same height" (Kv.height mem) (Kv.height disk);
      let sm = Kv.snapshot mem and sd = Kv.snapshot disk in
      Alcotest.(check int) "snapshot heights agree" sm.App.height sd.App.height;
      Alcotest.(check string) "snapshot states byte-identical" sm.App.state sd.App.state;
      Kv.close disk)

let test_reads_leave_state_untouched () =
  with_dir (fun dir ->
      let mem = Kv.memory ~n_records () in
      let disk = Kv.disk ~dir ~n_records () in
      List.iter (fun kv -> ignore (Kv.apply kv (write_batch 0))) [ mem; disk ];
      let before = Kv.state_digest mem in
      let b = read_batch 0 in
      Alcotest.(check bool) "batch is read-only" true (Batch.read_only b);
      let rm = Kv.read mem b and rd = Kv.read disk b in
      Alcotest.(check string) "read results agree across backends" rm.App.digest rd.App.digest;
      Alcotest.(check int) "read counted" 1 rm.App.reads;
      Alcotest.(check int) "scan counted" 1 rm.App.scans;
      Alcotest.(check int) "scan rows = 1 + (value land 63)" 8 rm.App.scanned_rows;
      Alcotest.(check string) "state unchanged by reads" before (Kv.state_digest mem);
      Alcotest.(check string) "disk state unchanged too" (Kv.state_digest disk) before;
      Alcotest.(check int) "height unchanged" 1 (Kv.height mem);
      Kv.close disk)

(* -- crash recovery ------------------------------------------------------ *)

(* Run [blocks] writes against a disk store, then simulate a crash at
   every possible torn-write point: for every prefix length of
   blocks.log, reconstruct a crashed directory and reopen it.  The
   recovered store must land exactly on the reference digest for the
   number of complete frames it could replay. *)
let crash_sweep ~snapshot_every ~blocks ~check_height =
  let refs = ref_digests ~blocks in
  with_dir (fun dir ->
      let kv = Kv.disk ~snapshot_every ~dir ~n_records () in
      for i = 0 to blocks - 1 do
        ignore (Kv.apply kv (write_batch i))
      done;
      (* Simulate the crash: abandon [kv] without closing it; log_block
         flushes each frame, so the on-disk bytes are what a crash at
         this point would leave behind. *)
      let log = read_file (Filename.concat dir "blocks.log") in
      Alcotest.(check bool) "log is non-empty before the crash" true (String.length log > 0);
      for cut = 0 to String.length log do
        with_dir (fun dir2 ->
            copy_snapshot ~src:dir ~dst:dir2;
            write_file (Filename.concat dir2 "blocks.log") (String.sub log 0 cut);
            let r = Kv.disk ~snapshot_every ~dir:dir2 ~n_records () in
            let h = Kv.height r in
            check_height ~cut h;
            Alcotest.(check string)
              (Printf.sprintf "digest after crash at log byte %d (height %d)" cut h)
              refs.(h) (Kv.state_digest r);
            Kv.close r)
      done;
      Kv.close kv)

(* Frame size for our 3-write batches:
   [height][count] + 3 x ([key][value]) + [checksum] = 9 words. *)
let frame_bytes = 72

let test_crash_at_every_log_byte () =
  (* snapshot_every larger than the run: the log covers everything from
     genesis, so a cut at byte [c] must recover exactly [c / frame]
     blocks. *)
  crash_sweep ~snapshot_every:1024 ~blocks:6 ~check_height:(fun ~cut h ->
      Alcotest.(check int)
        (Printf.sprintf "complete frames below byte %d" cut)
        (cut / frame_bytes) h)

let test_crash_after_compaction () =
  (* snapshot_every=4 over 10 blocks: the store re-anchored at height 8,
     so any crash recovers to at least 8 and the log only adds the two
     post-snapshot frames. *)
  crash_sweep ~snapshot_every:4 ~blocks:10 ~check_height:(fun ~cut h ->
      Alcotest.(check int)
        (Printf.sprintf "snapshot base + complete frames at byte %d" cut)
        (8 + (cut / frame_bytes)) h)

let test_corrupt_frame_stops_replay () =
  let blocks = 6 in
  let refs = ref_digests ~blocks in
  with_dir (fun dir ->
      let kv = Kv.disk ~snapshot_every:1024 ~dir ~n_records () in
      for i = 0 to blocks - 1 do
        ignore (Kv.apply kv (write_batch i))
      done;
      let log = read_file (Filename.concat dir "blocks.log") in
      (* Flip one byte inside the fourth frame's payload: replay must
         stop after the three intact frames, discarding the rest. *)
      let corrupt = Bytes.of_string log in
      let off = (3 * frame_bytes) + 20 in
      Bytes.set corrupt off (Char.chr (Char.code (Bytes.get corrupt off) lxor 0xFF));
      with_dir (fun dir2 ->
          copy_snapshot ~src:dir ~dst:dir2;
          write_file (Filename.concat dir2 "blocks.log") (Bytes.to_string corrupt);
          let r = Kv.disk ~snapshot_every:1024 ~dir:dir2 ~n_records () in
          Alcotest.(check int) "replay stops at the corrupt frame" 3 (Kv.height r);
          Alcotest.(check string) "state is the intact prefix" refs.(3) (Kv.state_digest r);
          Kv.close r);
      Kv.close kv)

let test_lost_snapshot_falls_back_to_genesis () =
  (* After compaction the log starts above genesis; if the snapshot is
     gone those frames are an unappliable gap, so recovery restarts
     from the identical initial table rather than applying them out of
     order. *)
  let refs = ref_digests ~blocks:10 in
  with_dir (fun dir ->
      let kv = Kv.disk ~snapshot_every:4 ~dir ~n_records () in
      for i = 0 to 9 do
        ignore (Kv.apply kv (write_batch i))
      done;
      with_dir (fun dir2 ->
          write_file (Filename.concat dir2 "blocks.log")
            (read_file (Filename.concat dir "blocks.log"));
          let r = Kv.disk ~snapshot_every:4 ~dir:dir2 ~n_records () in
          Alcotest.(check int) "gapped log cannot apply" 0 (Kv.height r);
          Alcotest.(check string) "state is genesis" refs.(0) (Kv.state_digest r);
          Kv.close r);
      Kv.close kv)

let test_recovery_idempotent_and_reanchored () =
  let blocks = 7 in
  let refs = ref_digests ~blocks in
  with_dir (fun dir ->
      let kv = Kv.disk ~snapshot_every:1024 ~dir ~n_records () in
      for i = 0 to blocks - 1 do
        ignore (Kv.apply kv (write_batch i))
      done;
      (* Crash with a torn tail: half of an eighth frame. *)
      let log = read_file (Filename.concat dir "blocks.log") in
      write_file (Filename.concat dir "blocks.log") (log ^ String.make 20 '\x55');
      let r1 = Kv.disk ~snapshot_every:1024 ~dir ~n_records () in
      Alcotest.(check int) "recovers the full height" blocks (Kv.height r1);
      Alcotest.(check string) "recovers the pre-crash digest" refs.(blocks)
        (Kv.state_digest r1);
      Kv.close r1;
      (* Recovery re-anchored: the snapshot holds the full height and
         the log restarted empty, so the torn tail is gone for good. *)
      Alcotest.(check int) "log truncated by the re-anchor" 0
        (String.length (read_file (Filename.concat dir "blocks.log")));
      let r2 = Kv.disk ~snapshot_every:1024 ~dir ~n_records () in
      Alcotest.(check int) "second recovery is identical" blocks (Kv.height r2);
      Alcotest.(check string) "digest stable across reopens" refs.(blocks)
        (Kv.state_digest r2);
      Kv.close r2)

let test_installed_snapshot_persists () =
  (* Checkpoint state transfer: a snapshot installed via [restore] on a
     disk-backed store must survive a restart (note_restore re-anchors
     the on-disk state). *)
  with_dir (fun src_dir ->
      with_dir (fun dst_dir ->
          let src = Kv.disk ~dir:src_dir ~n_records () in
          for i = 0 to 4 do
            ignore (Kv.apply src (write_batch i))
          done;
          let snap = Kv.snapshot src in
          let dst = Kv.disk ~dir:dst_dir ~n_records () in
          Kv.restore dst snap;
          Alcotest.(check int) "snapshot installed" 5 (Kv.height dst);
          Kv.close dst;
          let r = Kv.disk ~dir:dst_dir ~n_records () in
          Alcotest.(check int) "installed height survives restart" 5 (Kv.height r);
          Alcotest.(check string) "installed state survives restart" (Kv.state_digest src)
            (Kv.state_digest r);
          (* Forward-ratchet: replaying the same snapshot cannot rewind
             or double-apply. *)
          Kv.restore r snap;
          Alcotest.(check int) "stale restore ignored" 5 (Kv.height r);
          Kv.close r;
          Kv.close src))

(* -- end-to-end deployment equivalence ----------------------------------- *)

module Dep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)
module Report = Rdb_fabric.Report

let test_mem_vs_disk_deployment () =
  let cfg storage =
    let base =
      {
        Config.default with
        Config.local_timeout_ms = 500.0;
        remote_timeout_ms = 1_000.0;
        client_timeout_ms = 1_500.0;
        checkpoint_interval = 60;
      }
    in
    Config.make ~base ~z:1 ~n:4 ~batch_size:5 ~client_inflight:4 ~seed:1 ~storage ()
  in
  with_dir (fun store_dir ->
      let dm = Dep.create ~n_records:1000 (cfg Config.Memory) in
      let dd = Dep.create ~n_records:1000 ~store_dir (cfg Config.Disk) in
      let rm = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 2) dm in
      let rd = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 2) dd in
      (* The backend is invisible to consensus and to the metrics: the
         disk deployment must reproduce the memory run exactly. *)
      Alcotest.(check int) "same completed txns" rm.Report.completed_txns
        rd.Report.completed_txns;
      Alcotest.(check int) "same decisions" rm.Report.decisions rd.Report.decisions;
      Alcotest.(check string) "reports label their backend" "disk" rd.Report.storage;
      Alcotest.(check string) "memory labelled too" "mem" rm.Report.storage;
      for i = 0 to 3 do
        Alcotest.(check string)
          (Printf.sprintf "replica %d ledger tip" i)
          (Ledger.tip_hash (Dep.ledger dm ~replica:i))
          (Ledger.tip_hash (Dep.ledger dd ~replica:i));
        Alcotest.(check string)
          (Printf.sprintf "replica %d state digest" i)
          ((Dep.app dm ~replica:i).App.state_digest ())
          ((Dep.app dd ~replica:i).App.state_digest ())
      done;
      Dep.close dm;
      Dep.close dd;
      (* The disk deployment left recoverable per-replica stores behind:
         reopening replica 0's store reproduces its final state. *)
      let final = (Dep.app dm ~replica:0).App.state_digest () in
      let r =
        Kv.disk ~dir:(Filename.concat store_dir "r0") ~n_records:1000 ()
      in
      Alcotest.(check string) "replica 0 store recovers final state" final
        (Kv.state_digest r);
      Kv.close r)

let suite =
  [
    ("backend digest equivalence", `Quick, test_backend_digest_equivalence);
    ("reads leave state untouched", `Quick, test_reads_leave_state_untouched);
    ("crash at every log byte", `Quick, test_crash_at_every_log_byte);
    ("crash after compaction", `Quick, test_crash_after_compaction);
    ("corrupt frame stops replay", `Quick, test_corrupt_frame_stops_replay);
    ("lost snapshot falls back to genesis", `Quick, test_lost_snapshot_falls_back_to_genesis);
    ("recovery idempotent, re-anchored", `Quick, test_recovery_idempotent_and_reanchored);
    ("installed snapshot persists", `Quick, test_installed_snapshot_persists);
    ("mem vs disk deployments identical", `Quick, test_mem_vs_disk_deployment);
  ]
