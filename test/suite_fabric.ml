(* Fabric tests: metrics/report math, deployment wiring, payload
   retention modes, run windows, and cross-protocol reproducibility. *)

module Config = Rdb_types.Config
module Time = Rdb_sim.Time
module Metrics = Rdb_fabric.Metrics
module Report = Rdb_fabric.Report
module Ledger = Rdb_ledger.Ledger
module Block = Rdb_ledger.Block
module Batch = Rdb_types.Batch
module Dep = Rdb_fabric.Deployment.Make (Rdb_pbft.Replica)

(* -- Metrics ---------------------------------------------------------------- *)

let test_metrics_window () =
  let m = Metrics.create () in
  (* Completions outside the window are ignored. *)
  Metrics.record_completion m ~now:Time.zero ~txns:10 ~latency:(Time.ms 5) ();
  Metrics.open_window m ~now:(Time.sec 1);
  Metrics.record_completion m ~now:(Time.sec 2) ~txns:10 ~latency:(Time.ms 5) ();
  Metrics.record_completion m ~now:(Time.sec 2) ~txns:20 ~latency:(Time.ms 15) ();
  Metrics.close_window m ~now:(Time.sec 11);
  Metrics.record_completion m ~now:(Time.sec 12) ~txns:10 ~latency:(Time.ms 5) ();
  Alcotest.(check int) "completed txns in window" 30 (Metrics.completed_txns m);
  Alcotest.(check (float 0.001)) "throughput" 3.0 (Metrics.throughput_txn_s m);
  let lat = Metrics.latency_summary m in
  Alcotest.(check (float 0.001)) "avg latency" 10.0 lat.Metrics.avg_ms

let test_latency_percentiles () =
  let m = Metrics.create () in
  Metrics.open_window m ~now:Time.zero;
  for i = 1 to 100 do
    Metrics.record_completion m ~now:(Time.sec 1) ~txns:1 ~latency:(Time.ms i) ()
  done;
  Metrics.close_window m ~now:(Time.sec 10);
  let lat = Metrics.latency_summary m in
  Alcotest.(check bool) "p50 around 50" true (abs_float (lat.Metrics.p50_ms -. 50.) <= 2.);
  Alcotest.(check bool) "p99 around 99" true (abs_float (lat.Metrics.p99_ms -. 99.) <= 2.);
  Alcotest.(check (float 0.001)) "max" 100.0 lat.Metrics.max_ms

(* -- Deployment wiring -------------------------------------------------------- *)

let test_deployment_layout_validation () =
  (* z > 6 now deploys onto a tiled topology (DESIGN.md §17); only a
     degenerate cluster count is rejected. *)
  Alcotest.check_raises "z=0 rejected"
    (Invalid_argument "Deployment.create: z must be >= 1") (fun () ->
      ignore (Dep.create { (Config.make ~z:1 ~n:4 ()) with Config.z = 0 }))

let test_retain_payloads_modes () =
  let cfg = Itest.small_cfg ~z:1 ~n:4 () in
  let d1 = Dep.create ~n_records:Itest.records ~retain_payloads:true cfg in
  let _ = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 1) d1 in
  let l1 = Dep.ledger d1 ~replica:0 in
  Alcotest.(check bool) "payloads retained" true
    (Array.length (Ledger.get l1 0).Block.batch.Batch.txns > 0);
  let d2 = Dep.create ~n_records:Itest.records ~retain_payloads:false cfg in
  let _ = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 1) d2 in
  let l2 = Dep.ledger d2 ~replica:0 in
  Alcotest.(check int) "payloads dropped" 0 (Array.length (Ledger.get l2 0).Block.batch.Batch.txns);
  (* Identical consensus either way. *)
  Alcotest.(check int) "same chain length" (Ledger.length l1) (Ledger.length l2);
  Alcotest.(check bool) "compact chain still verifies" true (Ledger.verify l2)

let test_decisions_counted () =
  let cfg = Itest.small_cfg ~z:1 ~n:4 () in
  let d = Dep.create ~n_records:Itest.records cfg in
  let report = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 2) d in
  Alcotest.(check bool) "decisions > 0" true (report.Report.decisions > 0);
  Alcotest.(check bool) "traffic measured" true (report.Report.local_msgs > 0)

let test_report_per_decision_math () =
  let r =
    {
      Report.protocol = "x"; z = 1; n = 4; batch_size = 10; throughput_txn_s = 0.;
      avg_latency_ms = 0.; p50_latency_ms = 0.; p95_latency_ms = 0.; p99_latency_ms = 0.;
      completed_batches = 0; completed_txns = 0; decisions = 10; local_msgs = 240;
      global_msgs = 30; local_mb = 0.; global_mb = 0.; view_changes = 0;
      state_transfers = 0; holes_filled = 0; retransmissions = 0; storage = "mem";
      read_txns = 0; scan_txns = 0; write_txns = 0; read_p50_latency_ms = 0.;
      read_p95_latency_ms = 0.; read_p99_latency_ms = 0.; window_sec = 1.;
      trace = None;
    }
  in
  Alcotest.(check (float 0.001)) "local per decision" 24.0 (Report.local_msgs_per_decision r);
  Alcotest.(check (float 0.001)) "global per decision" 3.0 (Report.global_msgs_per_decision r)

let test_cross_run_reproducibility_across_protocols () =
  (* Two separately-constructed deployments with the same seed produce
     byte-identical ledgers. *)
  let cfg = Itest.small_cfg ~z:1 ~n:4 () in
  let run () =
    let d = Dep.create ~n_records:Itest.records cfg in
    let _ = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 2) d in
    Dep.ledger d ~replica:0
  in
  let l1 = run () and l2 = run () in
  Alcotest.(check int) "same length" (Ledger.length l1) (Ledger.length l2);
  Alcotest.(check string) "same tip hash" (Ledger.tip_hash l1) (Ledger.tip_hash l2)

let test_different_seeds_differ () =
  let mk seed =
    let cfg = Itest.small_cfg ~z:1 ~n:4 ~seed () in
    let d = Dep.create ~n_records:Itest.records cfg in
    let _ = Dep.run ~warmup:(Time.sec 1) ~measure:(Time.sec 1) d in
    Ledger.tip_hash (Dep.ledger d ~replica:0)
  in
  Alcotest.(check bool) "different seeds, different histories" true (mk 1 <> mk 2)

(* -- Json hardening ------------------------------------------------------ *)

module Json = Rdb_fabric.Json

let json_roundtrip_float f =
  match Json.of_string (Json.to_string_compact (Json.Float f)) with
  | Ok (Json.Float g) ->
      Alcotest.(check bool) (Printf.sprintf "float %h round-trips" f) true (g = f);
      Alcotest.(check bool)
        (Printf.sprintf "float %h keeps its sign" f)
        true
        (Float.sign_bit g = Float.sign_bit f)
  | Ok _ -> Alcotest.fail (Printf.sprintf "float %h reparsed as a non-float" f)
  | Error e -> Alcotest.fail (Printf.sprintf "float %h: %s" f e)

let test_json_float_roundtrips () =
  List.iter json_roundtrip_float
    [ -0.; 0.; 1e300; -1e300; 1e-300; 5e-324; Float.max_float; -.Float.max_float; 0.1; -2.5e-10 ]

let test_json_surrogate_pairs () =
  (* RFC 8259 §7: astral code points arrive as UTF-16 surrogate pairs
     and must decode to the real code point (4-byte UTF-8), not to a
     pair of 3-byte CESU-8 sequences. *)
  (match Json.of_string {|"😀"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "U+1F600 as a surrogate pair" "\xF0\x9F\x98\x80" s
  | Ok _ -> Alcotest.fail "surrogate pair parsed as a non-string"
  | Error e -> Alcotest.fail e);
  (match Json.of_string {|"𐀀"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "U+10000, the first astral code point" "\xF0\x90\x80\x80" s
  | Ok _ -> Alcotest.fail "surrogate pair parsed as a non-string"
  | Error e -> Alcotest.fail e);
  (* BMP escapes are unaffected. *)
  (match Json.of_string {|"é中"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "BMP escapes" "\xC3\xA9\xE4\xB8\xAD" s
  | _ -> Alcotest.fail "BMP escape failed");
  (* Unpaired surrogates denote no character: parse error, never
     invalid UTF-8 output. *)
  List.iter
    (fun doc ->
      match Json.of_string doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%s should not parse" doc))
    [ {|"\uD800"|}; {|"\uDFFF"|}; {|"\uD800\uD800"|}; {|"\uD800x"|}; {|"\uDC00\uD800"|} ]

let test_json_depth_guard () =
  let deep k =
    String.concat "" (List.init k (fun _ -> "[")) ^ String.concat "" (List.init k (fun _ -> "]"))
  in
  (match Json.of_string (deep 512) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "512 levels should parse: %s" e));
  (match Json.of_string (deep 513) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "513 levels should be rejected");
  (* A bracket bomb must come back as Error, not a crash. *)
  match Json.of_string (String.concat "" (List.init 200_000 (fun _ -> "[{\"k\":"))) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bracket bomb should be rejected"

let suite =
  [
    ("metrics window", `Quick, test_metrics_window);
    ("json float round-trips", `Quick, test_json_float_roundtrips);
    ("json surrogate pairs", `Quick, test_json_surrogate_pairs);
    ("json depth guard", `Quick, test_json_depth_guard);
    ("latency percentiles", `Quick, test_latency_percentiles);
    ("deployment validation", `Quick, test_deployment_layout_validation);
    ("retain_payloads modes", `Quick, test_retain_payloads_modes);
    ("decisions counted", `Quick, test_decisions_counted);
    ("report math", `Quick, test_report_per_decision_math);
    ("reproducibility", `Quick, test_cross_run_reproducibility_across_protocols);
    ("seed sensitivity", `Quick, test_different_seeds_differ);
  ]
