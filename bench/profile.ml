(* Poor-man's sampling profiler for the simulator: runs one scenario
   under an ITIMER_PROF at ~1 kHz, records the top OCaml frames at each
   tick and prints a flat profile.  No external tooling needed — the
   container this grows in has neither perf nor a -p toolchain.

   Usage: dune exec bench/profile.exe -- [geobft|pbft|...] [measure_ms] *)

module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Config = Rdb_types.Config

let samples : (string, int) Hashtbl.t = Hashtbl.create 1024
let total = ref 0

let record () =
  incr total;
  let bt = Printexc.get_callstack 14 in
  let slots = Printexc.backtrace_slots bt in
  match slots with
  | None -> ()
  | Some slots ->
      (* Skip the handler frames; record each distinct location once per
         sample so callers and callees both accumulate. *)
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun slot ->
          match Printexc.Slot.location slot with
          | None -> ()
          | Some loc ->
              let key = Printf.sprintf "%s:%d" loc.Printexc.filename loc.Printexc.line_number in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                Hashtbl.replace samples key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt samples key))
              end)
        slots

let () =
  let proto =
    if Array.length Sys.argv > 1 then
      match Runner.proto_of_string Sys.argv.(1) with
      | Some p -> p
      | None -> failwith "unknown protocol"
    else Runner.Geobft
  in
  let measure_ms =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3000
  in
  Printexc.record_backtrace true;
  ignore
    (Sys.signal Sys.sigprof
       (Sys.Signal_handle (fun _ -> record ())));
  ignore
    (Unix.setitimer Unix.ITIMER_PROF
       { Unix.it_interval = 0.001; it_value = 0.001 });
  let windows =
    { Runner.warmup = Rdb_sim.Time.ms 500; measure = Rdb_sim.Time.ms measure_ms }
  in
  let cfg = Config.make ~z:4 ~n:7 ~seed:1 () in
  let t0 = Unix.gettimeofday () in
  let r = Runner.run (Scenario.make ~windows proto cfg) in
  let wall = Unix.gettimeofday () -. t0 in
  ignore (Unix.setitimer Unix.ITIMER_PROF { Unix.it_interval = 0.; it_value = 0. });
  Printf.printf "wall %.1fs, %.0f txn/s, %d samples\n%!" wall
    r.Rdb_fabric.Report.throughput_txn_s !total;
  let rows = Hashtbl.fold (fun k v acc -> (v, k) :: acc) samples [] in
  List.iter
    (fun (v, k) ->
      if v * 200 > !total then
        Printf.printf "%6.2f%%  %s\n" (100. *. float_of_int v /. float_of_int !total) k)
    (List.sort (fun a b -> compare (fst b) (fst a)) rows)
