(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4) and runs Bechamel micro-benchmarks of the
   substrates.  All experiment grids are enumerated as Scenario.t
   lists (the same lists `rdb_cli sweep` uses) and executed through
   the multicore sweep engine.

   Usage:
     dune exec bench/main.exe                 # everything (default windows)
     dune exec bench/main.exe -- fig10        # one artifact
     dune exec bench/main.exe -- fig12 fig13
     dune exec bench/main.exe -- -j 8 all     # 8 worker domains
     dune exec bench/main.exe -- --full all   # paper-length windows
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks

   Artifacts: table1 table2 fig10 fig11 fig12 fig13 ablations micro.
   EXPERIMENTS.md records the paper's reported values next to the
   numbers these runs produce. *)

module Runner = Rdb_experiments.Runner
module Scenario = Rdb_experiments.Scenario
module Figures = Rdb_experiments.Figures
module Tables = Rdb_experiments.Tables
module Ablations = Rdb_experiments.Ablations
module Sweep = Rdb_sweep.Sweep
module Config = Rdb_types.Config
module Adversary = Rdb_adversary.Adversary
module Report = Rdb_fabric.Report
module Json = Rdb_fabric.Json

let say fmt = Printf.printf fmt

let jobs_ref = ref (Sweep.default_jobs ())

(* Run one scenario grid through the sweep engine, failing loudly if
   any scenario failed (bench grids contain no chaos faults, so a
   failure is always a bug). *)
let sweep scenarios = Sweep.reports_exn (Sweep.run ~jobs:!jobs_ref scenarios)

(* -- machine-readable results (BENCH_results.json) ------------------------ *)

(* Every artifact run is recorded as its wall time plus the labeled
   deployment reports it produced, and the whole session is written to
   BENCH_results.json so the perf trajectory is diffable across PRs. *)
type artifact = { a_name : string; a_wall_s : float; a_runs : (string * Report.t) list }

let artifacts : artifact list ref = ref []

let record name wall runs =
  artifacts := { a_name = name; a_wall_s = wall; a_runs = runs } :: !artifacts

let timed name ?(runs = fun _ -> []) f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  say "[%s done in %.1fs]\n%!" name wall;
  record name wall (runs r);
  r

let write_results ~windows () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Int 2);
        ("generated_unix", Json.Float (Float.round (Unix.time ())));
        ("jobs", Json.Int !jobs_ref);
        ( "windows",
          Json.Obj
            [
              ("warmup_s", Json.Float (Rdb_sim.Time.to_sec_f windows.Runner.warmup));
              ("measure_s", Json.Float (Rdb_sim.Time.to_sec_f windows.Runner.measure));
            ] );
        ( "artifacts",
          Json.List
            (List.rev_map
               (fun a ->
                 Json.Obj
                   [
                     ("name", Json.String a.a_name);
                     ("wall_s", Json.Float a.a_wall_s);
                     ( "runs",
                       Json.List
                         (List.map
                            (fun (label, r) ->
                              Json.Obj
                                [ ("label", Json.String label); ("report", Report.to_json r) ])
                            a.a_runs) );
                   ])
               !artifacts) );
      ]
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc (Json.to_string doc);
  close_out oc;
  say "wrote BENCH_results.json (%d artifacts)\n%!" (List.length !artifacts)

(* -- bench smoke + regression gate ----------------------------------------- *)

(* One small fixed-seed run per protocol.  The simulator is
   deterministic, so for a given binary these numbers are exactly
   reproducible; the CI gate compares them against bench/baseline.json
   with a tolerance that absorbs legitimate cross-version drift. *)
let smoke_windows = { Runner.warmup = Rdb_sim.Time.ms 500; measure = Rdb_sim.Time.ms 1500 }
let smoke_cfg () = Config.make ~z:2 ~n:4 ~batch_size:50 ~client_inflight:16 ~seed:1 ()

(* One adversary scenario rides along in the smoke matrix: a corrupted
   cluster-0 primary silencing its global shares toward remote
   clusters for most of the measured window.  GeoBFT absorbs it (f=1
   per cluster; the f+1 fan-out and local rebroadcast route around the
   muted sender), so the entry pins the cost of a *live* interposition
   hook — the other five entries keep pinning the hook's disabled
   path, which must stay at its pre-adversary numbers. *)
let smoke_attack () =
  match Adversary.Attack.of_id "0@600:1400!mute.share.rem" with
  | Some a -> a
  | None -> failwith "bench: unparseable smoke attack id"

let smoke_scenarios () =
  List.map (fun p -> Scenario.make ~windows:smoke_windows p (smoke_cfg ())) Runner.all_protocols
  @ [ Scenario.make ~windows:smoke_windows ~attack:(smoke_attack ()) Scenario.Geobft (smoke_cfg ());
      (* The read-heavy entry pins the read-path consensus bypass: 50%
         of batches are point reads and 10% scans, served from replica
         state at f+1 matching result digests, so its throughput and
         latency move whenever the bypass (or the storage seam under
         it) changes cost. *)
      Scenario.make ~windows:smoke_windows Scenario.Geobft
        { (smoke_cfg ()) with Config.read_fraction = 0.5; scan_fraction = 0.1 };
      (* The large-topology entry pins the scaling work of DESIGN.md
         §17: 8 tiled regions, 31 replicas each, 16k aggregated
         clients — so pooled multicast fan-out, client-group ticks and
         tiled-topology routing all sit on its critical path.  A short
         window keeps the entry's share of the gate under ~10 s. *)
      Scenario.make
        ~windows:{ Runner.warmup = Rdb_sim.Time.ms 300; measure = Rdb_sim.Time.ms 700 }
        Scenario.Geobft
        (Config.make ~z:8 ~n:31 ~clients:16_000 ~seed:1 ()) ]

let smoke_runs () =
  List.map
    (fun ((s : Scenario.t), r) ->
      say "  %s\n%!" (Report.to_string r);
      (s, r))
    (sweep (smoke_scenarios ()))

let run_smoke () =
  timed "smoke"
    ~runs:(List.map (fun ((s : Scenario.t), r) -> (Scenario.proto_name s.Scenario.proto, r)))
    (fun () ->
      say "== bench smoke (z=2 n=4 batch=50, 0.5s + 1.5s) ==\n%!";
      smoke_runs ())

(* Baseline file: written by --write-baseline, committed as
   bench/baseline.json, checked by --check (the CI regression gate).
   Since schema 2 the runs are keyed by Scenario.to_string ids, so the
   gate re-derives its matrix from the baseline file itself. *)
(* Per-metric tolerance bands (schema 3).  Simulated throughput moves
   more than latency when event interleavings shift, so the two
   metrics get independent bands; schema-2 files (one shared
   [tolerance_pct]) are still accepted. *)
let default_thr_tolerance = 10.0
let default_lat_tolerance = 10.0

type tolerances = { tol_thr : float; tol_lat : float }

let tolerance_of t = function
  | "throughput_txn_s" -> t.tol_thr
  | _ -> t.tol_lat

let write_baseline path runs =
  let doc =
    Json.Obj
      [
        ("schema", Json.Int 3);
        ( "tolerances",
          Json.Obj
            [
              ("throughput_txn_s", Json.Float default_thr_tolerance);
              ("avg_latency_ms", Json.Float default_lat_tolerance);
            ] );
        ( "runs",
          Json.List
            (List.map
               (fun ((s : Scenario.t), (r : Report.t)) ->
                 Json.Obj
                   [
                     ("scenario", Json.String (Scenario.to_string s));
                     ("throughput_txn_s", Json.Float r.Report.throughput_txn_s);
                     ("avg_latency_ms", Json.Float r.Report.avg_latency_ms);
                   ])
               runs) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  close_out oc;
  say "wrote %s (%d scenarios)\n%!" path (List.length runs)

type baseline_run = { b_scenario : Scenario.t; b_thr : float; b_lat : float }

let parse_baseline path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fail fmt = Printf.ksprintf (fun m -> say "bench --check: %s\n" m; exit 2) fmt in
  match Json.of_string s with
  | Error msg -> fail "cannot parse %s: %s" path msg
  | Ok doc ->
      (match Option.bind (Json.member "schema" doc) Json.to_int with
      | Some (2 | 3) -> ()
      | Some v ->
          fail
            "%s has schema %d, expected 2 or 3 (re-baseline with: dune exec bench/main.exe -- \
             --write-baseline %s)"
            path v path
      | None -> fail "%s carries no schema field" path);
      let shared =
        match Option.bind (Json.member "tolerance_pct" doc) Json.to_float with
        | Some t -> t
        | None -> default_thr_tolerance
      in
      let per_metric name fallback =
        match
          Option.bind (Json.member "tolerances" doc) (fun t ->
              Option.bind (Json.member name t) Json.to_float)
        with
        | Some t -> t
        | None -> fallback
      in
      let tolerances =
        {
          tol_thr = per_metric "throughput_txn_s" shared;
          tol_lat = per_metric "avg_latency_ms" shared;
        }
      in
      let runs =
        match Option.bind (Json.member "runs" doc) Json.to_list with
        | Some runs -> runs
        | None -> fail "%s has no runs" path
      in
      let parse_run rj =
        let str name = Option.bind (Json.member name rj) Json.to_str in
        let num name = Option.bind (Json.member name rj) Json.to_float in
        match (str "scenario", num "throughput_txn_s", num "avg_latency_ms") with
        | Some id, Some b_thr, Some b_lat -> (
            match Scenario.of_string id with
            | Some b_scenario -> { b_scenario; b_thr; b_lat }
            | None -> fail "unparseable scenario id %S" id)
        | _ -> fail "ill-formed baseline run entry"
      in
      (tolerances, List.map parse_run runs)

(* The CI regression gate: rerun every baseline scenario (through the
   sweep engine), compare per-scenario throughput and average latency
   against the committed values, exit non-zero if any metric drifts
   beyond the tolerance.  The current run matrix is cross-checked
   against the baseline's coverage: a matrix scenario with no baseline
   entry is a MISSING failure (otherwise newly added scenarios would
   silently escape the gate).  Good-direction drift beyond the band is
   reported as IMPROVED — not a failure, but a nudge to refresh the
   baseline so the band stays centred on reality.  Re-baseline with:
     dune exec bench/main.exe -- --write-baseline bench/baseline.json *)
(* Median of an odd (or even) number of repetitions: sort and take the
   middle, averaging the two central values for even counts. *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let run_check ?(reps = 3) path =
  let tolerances, baseline = parse_baseline path in
  if baseline = [] then begin
    say "bench --check: no runs found in %s\n" path;
    exit 2
  end;
  say
    "== bench regression check against %s (median of %d, tolerance thr %.0f%% / lat %.0f%%) ==\n%!"
    path reps tolerances.tol_thr tolerances.tol_lat;
  let covered = List.map (fun b -> Scenario.to_string b.b_scenario) baseline in
  let missing =
    List.filter
      (fun s -> not (List.mem (Scenario.to_string s) covered))
      (smoke_scenarios ())
  in
  List.iter
    (fun s -> say "  MISSING  %s has no baseline entry\n%!" (Scenario.to_string s))
    missing;
  (* Each repetition reruns the full baseline matrix with tracing on:
     the simulator is deterministic, so the median mainly de-flakes
     environmental effects (CI machine contention skewing any run that
     touches wall-clock), and the trace digests come along for free as
     a cross-PR artifact.  Tracing is observational — it never perturbs
     the simulated schedule — so the traced rerun reproduces the
     baseline numbers exactly. *)
  let traced = List.map (fun b -> { b.b_scenario with Scenario.trace = true }) baseline in
  let rep_runs =
    List.init reps (fun i ->
        let t0 = Unix.gettimeofday () in
        let runs = sweep traced in
        say "  [rep %d/%d done in %.1fs]\n%!" (i + 1) reps (Unix.gettimeofday () -. t0);
        record (Printf.sprintf "check-rep-%d" (i + 1)) (Unix.gettimeofday () -. t0)
          (List.map (fun ((s : Scenario.t), r) -> (Scenario.to_string s, r)) runs);
        runs)
  in
  (* Trace digests, one line per scenario (deterministic: any rep, any
     -j, same digest) — uploaded as a CI artifact next to
     BENCH_results.json so digests are diffable across PRs. *)
  (match rep_runs with
  | first :: _ ->
      let oc = open_out "BENCH_digests.txt" in
      List.iter
        (fun ((s : Scenario.t), (r : Report.t)) ->
          let digest =
            match r.Report.trace with
            | Some tr -> tr.Rdb_trace.Trace.digest_hex
            | None -> "-"
          in
          Printf.fprintf oc "%s %s\n" digest (Scenario.to_string s))
        first;
      close_out oc;
      say "wrote BENCH_digests.txt (%d scenarios)\n%!" (List.length first)
  | [] -> ());
  let failures = ref 0 and improved = ref 0 in
  let check id metric ~base ~got =
    let tolerance = tolerance_of tolerances metric in
    let drift = (got -. base) /. base *. 100. in
    (* Higher throughput / lower latency than baseline is never a
       regression; only flag drift in the bad direction.  Drift beyond
       the band in the *good* direction means the baseline has gone
       stale — call it out without failing. *)
    let bad, good =
      match metric with
      | "throughput_txn_s" -> (drift < -.tolerance, drift > tolerance)
      | _ -> (drift > tolerance, drift < -.tolerance)
    in
    say "  %-40s %-18s baseline %10.1f  got %10.1f  (%+.1f%%) %s\n%!" id metric base got drift
      (if bad then "FAIL" else if good then "IMPROVED" else "ok");
    if bad then incr failures;
    if good then incr improved
  in
  List.iteri
    (fun i b ->
      let id = Scenario.to_string b.b_scenario in
      let nth_metric f = median (List.map (fun runs -> f (snd (List.nth runs i))) rep_runs) in
      check id "throughput_txn_s" ~base:b.b_thr
        ~got:(nth_metric (fun (r : Report.t) -> r.Report.throughput_txn_s));
      check id "avg_latency_ms" ~base:b.b_lat
        ~got:(nth_metric (fun (r : Report.t) -> r.Report.avg_latency_ms)))
    baseline;
  write_results ~windows:smoke_windows ();
  if !improved > 0 then
    say
      "bench --check: %d metric(s) improved beyond the band; consider refreshing the \
       baseline (dune exec bench/main.exe -- --write-baseline %s)\n"
      !improved path;
  if !failures > 0 || missing <> [] then begin
    if !failures > 0 then say "bench --check: %d metric(s) regressed beyond tolerance\n" !failures;
    if missing <> [] then
      say
        "bench --check: %d run-matrix scenario(s) missing from %s (re-baseline with: dune exec \
         bench/main.exe -- --write-baseline %s)\n"
        (List.length missing) path path;
    exit 1
  end;
  say "bench --check: all %d scenarios within tolerance of baseline (median of %d)\n"
    (List.length baseline) reps

(* -- Bechamel micro-benchmarks ----------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let sha_payload = String.make 5400 'x' in
  let cmac_key = Rdb_crypto.Cmac.of_key (String.make 16 'k') in
  let sk = Rdb_crypto.Schnorr.keygen ~seed:"bench" ~key_id:0 in
  let pk = Rdb_crypto.Schnorr.public_key sk in
  let sg = Rdb_crypto.Schnorr.sign sk "payload" in
  let zipf = Rdb_prng.Zipf.create Rdb_ycsb.Table.default_records in
  let zipf_rng = Rdb_prng.Rng.create 1L in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "sha256-5400B" (fun () -> ignore (Rdb_crypto.Sha256.digest sha_payload));
    mk "aes-cmac-250B" (fun () ->
        ignore (Rdb_crypto.Cmac.mac cmac_key (String.sub sha_payload 0 250)));
    mk "schnorr-sign" (fun () -> ignore (Rdb_crypto.Schnorr.sign sk "payload"));
    mk "schnorr-verify" (fun () -> ignore (Rdb_crypto.Schnorr.verify pk "payload" sg));
    mk "sim-10k-events" (fun () ->
        let e = Rdb_sim.Engine.create () in
        for i = 1 to 10_000 do
          ignore (Rdb_sim.Engine.schedule_at e ~at:(Int64.of_int i) (fun () -> ()))
        done;
        Rdb_sim.Engine.run e);
    mk "zipf-sample-600k" (fun () -> ignore (Rdb_prng.Zipf.sample_scrambled zipf zipf_rng));
  ]
  (* One deployment benchmark per protocol: the full cost of simulating
     half a second of a small geo deployment. *)
  @ List.map
      (fun p ->
        Test.make
          ~name:(Printf.sprintf "sim-0.5s-%s" (Runner.proto_name p))
          (Staged.stage (fun () ->
               let cfg = Config.make ~z:2 ~n:4 ~batch_size:10 ~client_inflight:4 () in
               let windows =
                 { Runner.warmup = Rdb_sim.Time.ms 100; measure = Rdb_sim.Time.ms 400 }
               in
               ignore (Runner.run (Scenario.make ~windows p cfg)))))
      Runner.all_protocols

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  say "\n== Bechamel micro-benchmarks ==\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ]) in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some (est :: _) ->
              if est > 1e6 then say "  %-28s %12.3f ms/run\n%!" name (est /. 1e6)
              else say "  %-28s %12.1f ns/run\n%!" name est
          | _ -> say "  %-28s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* -- experiment artifacts ------------------------------------------------------ *)

let windows_ref = ref Runner.default_windows

let figure_runs prefix rows =
  List.map
    (fun (r : Figures.row) ->
      (Printf.sprintf "%s%s@%d" prefix (Runner.proto_name r.Figures.proto) r.Figures.x,
       r.Figures.report))
    rows

let run_table1 () = timed "table1" (fun () -> Tables.Table1.print ())

let run_table2 () =
  timed "table2"
    ~runs:(List.map (fun (p, report) -> (Runner.proto_name p, report)))
    (fun () ->
      let rows = Tables.Table2.rows_of_reports (sweep (Tables.Table2.scenarios ~windows:!windows_ref ())) in
      Tables.Table2.print rows;
      rows)

let run_fig10 () =
  timed "fig10" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig10.rows_of_reports (sweep (Figures.Fig10.scenarios ~windows:!windows_ref ())) in
      Figures.Fig10.print rows;
      rows)

let run_fig11 () =
  timed "fig11" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig11.rows_of_reports (sweep (Figures.Fig11.scenarios ~windows:!windows_ref ())) in
      Figures.Fig11.print rows;
      rows)

let run_fig12 () =
  timed "fig12"
    ~runs:(fun (one, ff, pf) ->
      figure_runs "one-failure:" one
      @ figure_runs "f-failures:" ff
      @ figure_runs "primary-failure:" pf)
    (fun () ->
      (* One sweep over all three panels: the engine interleaves them
         across domains instead of three serial barriers. *)
      let windows = !windows_ref in
      let s_one = Figures.Fig12.scenarios_one_failure ~windows () in
      let s_ff = Figures.Fig12.scenarios_f_failures ~windows () in
      let s_pf = Figures.Fig12.scenarios_primary_failure ~windows () in
      let results = sweep (s_one @ s_ff @ s_pf) in
      let rec split k l =
        if k = 0 then ([], l)
        else
          match l with
          | [] -> invalid_arg "fig12 split"
          | x :: rest ->
              let a, b = split (k - 1) rest in
              (x :: a, b)
      in
      let r_one, rest = split (List.length s_one) results in
      let r_ff, r_pf = split (List.length s_ff) rest in
      let one = Figures.Fig12.rows_of_reports r_one in
      let ff = Figures.Fig12.rows_of_reports r_ff in
      let pf = Figures.Fig12.rows_of_reports r_pf in
      Figures.Fig12.print ~one ~ff ~pf;
      (one, ff, pf))

let run_ablations () =
  timed "ablations"
    ~runs:(fun (rows : Ablations.rows) ->
      List.concat_map
        (fun (r : Ablations.Fanout.row) ->
          [
            (Printf.sprintf "fanout:%s:healthy" r.Ablations.Fanout.label,
             r.Ablations.Fanout.healthy);
            (Printf.sprintf "fanout:%s:one-receiver-down" r.Ablations.Fanout.label,
             r.Ablations.Fanout.one_receiver_down);
          ])
        rows.Ablations.fanout
      @ List.map
          (fun (r : Ablations.Pipeline.row) ->
            (Printf.sprintf "pipeline:depth=%d" r.Ablations.Pipeline.depth,
             r.Ablations.Pipeline.report))
          rows.Ablations.pipeline
      @ List.map
          (fun (r : Ablations.Crypto_split.row) ->
            (Printf.sprintf "crypto:%s" r.Ablations.Crypto_split.label,
             r.Ablations.Crypto_split.report))
          rows.Ablations.crypto_split
      @ List.concat_map
          (fun (r : Ablations.Threshold_certs.row) ->
            [
              (Printf.sprintf "certs:n=%d:plain" r.Ablations.Threshold_certs.n,
               r.Ablations.Threshold_certs.plain);
              (Printf.sprintf "certs:n=%d:threshold" r.Ablations.Threshold_certs.n,
               r.Ablations.Threshold_certs.threshold);
            ])
          rows.Ablations.threshold_certs)
    (fun () ->
      let windows = !windows_ref in
      let rows = Ablations.rows_of_reports ~windows (sweep (Ablations.scenarios ~windows ())) in
      Ablations.print rows;
      rows)

let run_fig13 () =
  timed "fig13" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig13.rows_of_reports (sweep (Figures.Fig13.scenarios ~windows:!windows_ref ())) in
      Figures.Fig13.print rows;
      rows)

(* Pull "--flag PATH" out of an argument list; returns (value, rest). *)
let rec take_flag flag = function
  | [] -> (None, [])
  | f :: value :: rest when f = flag -> (Some value, rest)
  | a :: rest ->
      let v, rest = take_flag flag rest in
      (v, a :: rest)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  if full then windows_ref := Runner.full_windows;
  let args = List.filter (fun a -> a <> "--full") args in
  (match take_flag "-j" args with
  | Some j, _ -> (
      match int_of_string_opt j with
      | Some j when j >= 1 -> jobs_ref := j
      | _ ->
          say "-j expects a positive integer\n";
          exit 2)
  | None, _ -> ());
  let _, args = take_flag "-j" args in
  let reps_flag, args = take_flag "--reps" args in
  let reps =
    match reps_flag with
    | None -> 3
    | Some r -> (
        match int_of_string_opt r with
        | Some r when r >= 1 -> r
        | _ ->
            say "--reps expects a positive integer\n";
            exit 2)
  in
  let check_path, args = take_flag "--check" args in
  let baseline_path, args = take_flag "--write-baseline" args in
  (match (check_path, baseline_path) with
  | Some path, _ ->
      (* CI regression gate: compare the median of [reps] fresh runs of
         the baseline's scenarios against the committed values, exit
         non-zero on regression. *)
      run_check ~reps path;
      exit 0
  | None, Some path ->
      write_baseline path (smoke_runs ());
      exit 0
  | None, None -> ());
  let targets =
    if args = [] || List.mem "all" args then
      [ "table1"; "table2"; "fig10"; "fig11"; "fig12"; "fig13"; "ablations"; "micro" ]
    else args
  in
  say "ResilientDB/GeoBFT evaluation harness (windows: warmup %.0fs + measure %.0fs, %d worker domain%s)\n%!"
    (Rdb_sim.Time.to_sec_f !windows_ref.Runner.warmup)
    (Rdb_sim.Time.to_sec_f !windows_ref.Runner.measure)
    !jobs_ref
    (if !jobs_ref = 1 then "" else "s")
  ;
  List.iter
    (function
      | "table1" -> run_table1 ()
      | "table2" -> ignore (run_table2 ())
      | "fig10" -> ignore (run_fig10 ())
      | "fig11" -> ignore (run_fig11 ())
      | "fig12" -> ignore (run_fig12 ())
      | "fig13" -> ignore (run_fig13 ())
      | "ablations" -> ignore (run_ablations ())
      | "micro" -> timed "micro" run_micro
      | "smoke" -> ignore (run_smoke ())
      | other -> say "unknown target %S (expected table1 table2 fig10..fig13 smoke micro)\n" other)
    targets;
  write_results ~windows:!windows_ref ()
