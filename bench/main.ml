(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4) and runs Bechamel micro-benchmarks of the
   substrates.

   Usage:
     dune exec bench/main.exe                 # everything (default windows)
     dune exec bench/main.exe -- fig10        # one artifact
     dune exec bench/main.exe -- fig12 fig13
     dune exec bench/main.exe -- --full all   # paper-length windows (slow)
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks

   Artifacts: table1 table2 fig10 fig11 fig12 fig13 ablations micro.
   EXPERIMENTS.md records the paper's reported values next to the
   numbers these runs produce. *)

module Runner = Rdb_experiments.Runner
module Figures = Rdb_experiments.Figures
module Tables = Rdb_experiments.Tables
module Ablations = Rdb_experiments.Ablations
module Config = Rdb_types.Config
module Report = Rdb_fabric.Report

let say fmt = Printf.printf fmt

(* -- machine-readable results (BENCH_results.json) ------------------------ *)

(* Every artifact run is recorded as its wall time plus the labeled
   deployment reports it produced, and the whole session is written to
   BENCH_results.json so the perf trajectory is diffable across PRs. *)
type artifact = { a_name : string; a_wall_s : float; a_runs : (string * Report.t) list }

let artifacts : artifact list ref = ref []

let record name wall runs =
  artifacts := { a_name = name; a_wall_s = wall; a_runs = runs } :: !artifacts

let timed name ?(runs = fun _ -> []) f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  say "[%s done in %.1fs]\n%!" name wall;
  record name wall (runs r);
  r

let json_of_run (label, (r : Report.t)) =
  Printf.sprintf
    "{\"label\":%S,\"protocol\":%S,\"z\":%d,\"n\":%d,\"batch_size\":%d,\
     \"throughput_txn_s\":%.1f,\"avg_latency_ms\":%.3f,\"p50_latency_ms\":%.3f,\
     \"p95_latency_ms\":%.3f,\"p99_latency_ms\":%.3f,\"completed_txns\":%d,\
     \"view_changes\":%d,\"state_transfers\":%d,\"holes_filled\":%d,\
     \"retransmissions\":%d}"
    label r.Report.protocol r.Report.z r.Report.n r.Report.batch_size
    r.Report.throughput_txn_s r.Report.avg_latency_ms r.Report.p50_latency_ms
    r.Report.p95_latency_ms r.Report.p99_latency_ms r.Report.completed_txns
    r.Report.view_changes r.Report.state_transfers r.Report.holes_filled
    r.Report.retransmissions

let write_results ~windows () =
  let oc = open_out "BENCH_results.json" in
  Printf.fprintf oc "{\n  \"schema\": 1,\n  \"generated_unix\": %.0f,\n" (Unix.time ());
  Printf.fprintf oc "  \"windows\": {\"warmup_s\": %.1f, \"measure_s\": %.1f},\n"
    (Rdb_sim.Time.to_sec_f windows.Runner.warmup)
    (Rdb_sim.Time.to_sec_f windows.Runner.measure);
  Printf.fprintf oc "  \"artifacts\": [\n";
  let arts = List.rev !artifacts in
  List.iteri
    (fun i a ->
      Printf.fprintf oc "    {\"name\":%S, \"wall_s\":%.2f, \"runs\":[" a.a_name a.a_wall_s;
      List.iteri
        (fun j run ->
          if j > 0 then output_string oc ",";
          Printf.fprintf oc "\n      %s" (json_of_run run))
        a.a_runs;
      if a.a_runs <> [] then output_string oc "\n    ";
      Printf.fprintf oc "]}%s\n" (if i < List.length arts - 1 then "," else ""))
    arts;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  say "wrote BENCH_results.json (%d artifacts)\n%!" (List.length arts)

(* -- bench smoke + regression gate ----------------------------------------- *)

(* One small fixed-seed run per protocol.  The simulator is
   deterministic, so for a given binary these numbers are exactly
   reproducible; the CI gate compares them against bench/baseline.json
   with a tolerance that absorbs legitimate cross-version drift. *)
let smoke_windows = { Runner.warmup = Rdb_sim.Time.ms 500; measure = Rdb_sim.Time.ms 1500 }
let smoke_cfg () = Config.make ~z:2 ~n:4 ~batch_size:50 ~client_inflight:16 ~seed:1 ()

let smoke_runs () =
  List.map
    (fun p ->
      let r = Runner.run_proto p ~windows:smoke_windows (smoke_cfg ()) in
      say "  %s\n%!" (Report.to_string r);
      (Runner.proto_name p, r))
    Runner.all_protocols

let run_smoke () =
  timed "smoke" ~runs:(fun rs -> rs) (fun () ->
      say "== bench smoke (z=2 n=4 batch=50, 0.5s + 1.5s) ==\n%!";
      smoke_runs ())

(* Baseline file: written by --write-baseline, committed as
   bench/baseline.json, checked by --check (the CI regression gate).
   The parser below is deliberately minimal — it reads only the format
   written here (no external JSON dependency in the container). *)
let write_baseline path runs =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": 1,\n  \"tolerance_pct\": 10.0,\n";
  Printf.fprintf oc
    "  \"config\": {\"z\": 2, \"n\": 4, \"batch_size\": 50, \"client_inflight\": 16, \"seed\": \
     1, \"warmup_ms\": 500, \"measure_ms\": 1500},\n";
  Printf.fprintf oc "  \"runs\": [\n";
  List.iteri
    (fun i (name, (r : Report.t)) ->
      Printf.fprintf oc
        "    {\"protocol\": %S, \"throughput_txn_s\": %.1f, \"avg_latency_ms\": %.3f}%s\n" name
        r.Report.throughput_txn_s r.Report.avg_latency_ms
        (if i < List.length runs - 1 then "," else ""))
    runs;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  say "wrote %s (%d protocols)\n%!" path (List.length runs)

(* Minimal scanner for the baseline format above. *)
let find_sub s pat ~from =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  if from >= n then None else go from

let number_after s name ~from =
  match find_sub s (Printf.sprintf "\"%s\":" name) ~from with
  | None -> None
  | Some i ->
      let start = i + String.length name + 3 in
      let stop = ref start in
      while
        !stop < String.length s
        && (match s.[!stop] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub s start (!stop - start)))

let parse_baseline path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tolerance =
    match number_after s "tolerance_pct" ~from:0 with Some t -> t | None -> 10.
  in
  let rec collect acc from =
    match find_sub s "\"protocol\": \"" ~from with
    | None -> List.rev acc
    | Some i ->
        let name_start = i + String.length "\"protocol\": \"" in
        let name_end = String.index_from s name_start '"' in
        let proto = String.sub s name_start (name_end - name_start) in
        let thr = number_after s "throughput_txn_s" ~from:name_end in
        let lat = number_after s "avg_latency_ms" ~from:name_end in
        (match (thr, lat) with
        | Some thr, Some lat -> collect ((proto, thr, lat) :: acc) name_end
        | _ -> collect acc name_end)
  in
  (tolerance, collect [] 0)

(* The CI regression gate: rerun the smoke matrix, compare per-protocol
   throughput and average latency against the committed baseline, exit
   non-zero if any metric drifts beyond the tolerance.  Re-baseline
   intentional performance changes with:
     dune exec bench/main.exe -- --write-baseline bench/baseline.json *)
let run_check path =
  let tolerance, baseline = parse_baseline path in
  if baseline = [] then begin
    say "bench --check: no runs found in %s\n" path;
    exit 2
  end;
  say "== bench regression check against %s (tolerance %.0f%%) ==\n%!" path tolerance;
  let fresh = smoke_runs () in
  let failures = ref 0 in
  let check proto metric ~base ~got =
    let drift = (got -. base) /. base *. 100. in
    (* Higher throughput / lower latency than baseline is never a
       regression; only flag drift in the bad direction. *)
    let bad =
      match metric with
      | "throughput_txn_s" -> drift < -.tolerance
      | _ -> drift > tolerance
    in
    say "  %-9s %-18s baseline %10.1f  got %10.1f  (%+.1f%%) %s\n%!" proto metric base got drift
      (if bad then "FAIL" else "ok");
    if bad then incr failures
  in
  List.iter
    (fun (proto, base_thr, base_lat) ->
      match List.assoc_opt proto fresh with
      | None ->
          say "  %-9s missing from fresh run set: FAIL\n" proto;
          incr failures
      | Some (r : Report.t) ->
          check proto "throughput_txn_s" ~base:base_thr ~got:r.Report.throughput_txn_s;
          check proto "avg_latency_ms" ~base:base_lat ~got:r.Report.avg_latency_ms)
    baseline;
  if !failures > 0 then begin
    say "bench --check: %d metric(s) regressed beyond %.0f%%\n" !failures tolerance;
    exit 1
  end;
  say "bench --check: all %d protocols within %.0f%% of baseline\n" (List.length baseline)
    tolerance

(* -- Bechamel micro-benchmarks ----------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let sha_payload = String.make 5400 'x' in
  let cmac_key = Rdb_crypto.Cmac.of_key (String.make 16 'k') in
  let sk = Rdb_crypto.Schnorr.keygen ~seed:"bench" ~key_id:0 in
  let pk = Rdb_crypto.Schnorr.public_key sk in
  let sg = Rdb_crypto.Schnorr.sign sk "payload" in
  let zipf = Rdb_prng.Zipf.create Rdb_ycsb.Table.default_records in
  let zipf_rng = Rdb_prng.Rng.create 1L in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "sha256-5400B" (fun () -> ignore (Rdb_crypto.Sha256.digest sha_payload));
    mk "aes-cmac-250B" (fun () ->
        ignore (Rdb_crypto.Cmac.mac cmac_key (String.sub sha_payload 0 250)));
    mk "schnorr-sign" (fun () -> ignore (Rdb_crypto.Schnorr.sign sk "payload"));
    mk "schnorr-verify" (fun () -> ignore (Rdb_crypto.Schnorr.verify pk "payload" sg));
    mk "sim-10k-events" (fun () ->
        let e = Rdb_sim.Engine.create () in
        for i = 1 to 10_000 do
          ignore (Rdb_sim.Engine.schedule_at e ~at:(Int64.of_int i) (fun () -> ()))
        done;
        Rdb_sim.Engine.run e);
    mk "zipf-sample-600k" (fun () -> ignore (Rdb_prng.Zipf.sample_scrambled zipf zipf_rng));
  ]
  (* One deployment benchmark per protocol: the full cost of simulating
     half a second of a small geo deployment. *)
  @ List.map
      (fun p ->
        Test.make
          ~name:(Printf.sprintf "sim-0.5s-%s" (Runner.proto_name p))
          (Staged.stage (fun () ->
               let cfg = Config.make ~z:2 ~n:4 ~batch_size:10 ~client_inflight:4 () in
               ignore
                 (Runner.run_proto p
                    ~windows:
                      { Runner.warmup = Rdb_sim.Time.ms 100; measure = Rdb_sim.Time.ms 400 }
                    cfg))))
      Runner.all_protocols

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  say "\n== Bechamel micro-benchmarks ==\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" [ test ]) in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some (est :: _) ->
              if est > 1e6 then say "  %-28s %12.3f ms/run\n%!" name (est /. 1e6)
              else say "  %-28s %12.1f ns/run\n%!" name est
          | _ -> say "  %-28s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* -- experiment artifacts ------------------------------------------------------ *)

let windows_ref = ref Runner.default_windows

let figure_runs prefix rows =
  List.map
    (fun (r : Figures.row) ->
      (Printf.sprintf "%s%s@%d" prefix (Runner.proto_name r.Figures.proto) r.Figures.x,
       r.Figures.report))
    rows

let run_table1 () = timed "table1" (fun () -> Tables.Table1.print ())

let run_table2 () =
  timed "table2"
    ~runs:(List.map (fun (p, report) -> (Runner.proto_name p, report)))
    (fun () ->
      let rows = Tables.Table2.run ~windows:!windows_ref () in
      Tables.Table2.print rows;
      rows)

let run_fig10 () =
  timed "fig10" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig10.run ~windows:!windows_ref () in
      Figures.Fig10.print rows;
      rows)

let run_fig11 () =
  timed "fig11" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig11.run ~windows:!windows_ref () in
      Figures.Fig11.print rows;
      rows)

let run_fig12 () =
  timed "fig12"
    ~runs:(fun (one, ff, pf) ->
      figure_runs "one-failure:" one
      @ figure_runs "f-failures:" ff
      @ figure_runs "primary-failure:" pf)
    (fun () ->
      let one = Figures.Fig12.run_one_failure ~windows:!windows_ref () in
      let ff = Figures.Fig12.run_f_failures ~windows:!windows_ref () in
      let pf = Figures.Fig12.run_primary_failure ~windows:!windows_ref () in
      Figures.Fig12.print ~one ~ff ~pf;
      (one, ff, pf))

let run_ablations () =
  timed "ablations"
    ~runs:(fun (a, b, c, d) ->
      List.concat_map
        (fun (r : Ablations.Fanout.row) ->
          [
            (Printf.sprintf "fanout:%s:healthy" r.Ablations.Fanout.label,
             r.Ablations.Fanout.healthy);
            (Printf.sprintf "fanout:%s:one-receiver-down" r.Ablations.Fanout.label,
             r.Ablations.Fanout.one_receiver_down);
          ])
        a
      @ List.map
          (fun (r : Ablations.Pipeline.row) ->
            (Printf.sprintf "pipeline:depth=%d" r.Ablations.Pipeline.depth,
             r.Ablations.Pipeline.report))
          b
      @ List.map
          (fun (r : Ablations.Crypto_split.row) ->
            (Printf.sprintf "crypto:%s" r.Ablations.Crypto_split.label,
             r.Ablations.Crypto_split.report))
          c
      @ List.concat_map
          (fun (r : Ablations.Threshold_certs.row) ->
            [
              (Printf.sprintf "certs:n=%d:plain" r.Ablations.Threshold_certs.n,
               r.Ablations.Threshold_certs.plain);
              (Printf.sprintf "certs:n=%d:threshold" r.Ablations.Threshold_certs.n,
               r.Ablations.Threshold_certs.threshold);
            ])
          d)
    (fun () ->
      let windows = !windows_ref in
      let a = Ablations.Fanout.run ~windows () in
      Ablations.Fanout.print a;
      let b = Ablations.Pipeline.run ~windows () in
      Ablations.Pipeline.print b;
      let c = Ablations.Crypto_split.run ~windows () in
      Ablations.Crypto_split.print c;
      let d = Ablations.Threshold_certs.run ~windows () in
      Ablations.Threshold_certs.print d;
      (a, b, c, d))

let run_fig13 () =
  timed "fig13" ~runs:(figure_runs "") (fun () ->
      let rows = Figures.Fig13.run ~windows:!windows_ref () in
      Figures.Fig13.print rows;
      rows)

(* Pull "--flag PATH" out of an argument list; returns (path, rest). *)
let rec take_flag flag = function
  | [] -> (None, [])
  | f :: path :: rest when f = flag -> (Some path, rest)
  | a :: rest ->
      let v, rest = take_flag flag rest in
      (v, a :: rest)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  if full then windows_ref := Runner.full_windows;
  let args = List.filter (fun a -> a <> "--full") args in
  let check_path, args = take_flag "--check" args in
  let baseline_path, args = take_flag "--write-baseline" args in
  (match (check_path, baseline_path) with
  | Some path, _ ->
      (* CI regression gate: compare a fresh smoke matrix against the
         committed baseline and exit non-zero on regression. *)
      run_check path;
      exit 0
  | None, Some path ->
      write_baseline path (smoke_runs ());
      exit 0
  | None, None -> ());
  let targets =
    if args = [] || List.mem "all" args then
      [ "table1"; "table2"; "fig10"; "fig11"; "fig12"; "fig13"; "ablations"; "micro" ]
    else args
  in
  say "ResilientDB/GeoBFT evaluation harness (windows: warmup %.0fs + measure %.0fs)\n%!"
    (Rdb_sim.Time.to_sec_f !windows_ref.Runner.warmup)
    (Rdb_sim.Time.to_sec_f !windows_ref.Runner.measure);
  List.iter
    (function
      | "table1" -> run_table1 ()
      | "table2" -> ignore (run_table2 ())
      | "fig10" -> ignore (run_fig10 ())
      | "fig11" -> ignore (run_fig11 ())
      | "fig12" -> ignore (run_fig12 ())
      | "fig13" -> ignore (run_fig13 ())
      | "ablations" -> ignore (run_ablations ())
      | "micro" -> timed "micro" run_micro
      | "smoke" -> ignore (run_smoke ())
      | other -> say "unknown target %S (expected table1 table2 fig10..fig13 smoke micro)\n" other)
    targets;
  write_results ~windows:!windows_ref ()
