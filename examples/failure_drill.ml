(* Failure drill: watch GeoBFT absorb failures in real (simulated) time.

   A two-region GeoBFT deployment runs while we inject the §4.3 failure
   scenarios on a timeline:

     t =  4 s   one backup in Oregon crashes          (small dip)
     t =  8 s   Oregon's primary crashes              (local view change)
     t = 14 s   the new Oregon primary is cut off
                from Iowa (Byzantine-style silence) (remote view change)

   The drill samples throughput every second, so you can watch the dips
   and recoveries, and prints the view-change evidence at the end.

     dune exec examples/failure_drill.exe *)

open Resilientdb
module Dep = Deployment.Make (Geobft)

let () =
  print_endline "== GeoBFT failure drill: Oregon + Iowa, n = 7 per cluster (f = 2) ==\n";
  let base =
    { Config.default with Config.local_timeout_ms = 1_000.; remote_timeout_ms = 2_000.;
      client_timeout_ms = 2_500. }
  in
  (* n = 7 tolerates f = 2 faults per cluster: the drill uses both. *)
  let cfg = Config.make ~base ~z:2 ~n:7 ~batch_size:50 ~client_inflight:8 () in
  let d = Dep.create cfg in
  let engine = Dep.engine d in
  let metrics = Dep.metrics d in

  (* Failure timeline.  Node ids: Oregon replicas are 0-6 (0 is the
     initial primary), Iowa replicas are 7-13. *)
  Dep.at d ~time:(Time.sec 4) (fun () ->
      print_endline "  t=4s   !! crash of one Oregon backup (replica 6)";
      Dep.crash_replica d 6);
  Dep.at d ~time:(Time.sec 8) (fun () ->
      print_endline "  t=8s   !! crash of Oregon's primary (replica 0)";
      Dep.crash_primary d ~cluster:0);
  Dep.at d ~time:(Time.sec 14) (fun () ->
      print_endline "  t=14s  !! Oregon's new primary stops talking to Iowa";
      (* Replica 1 is the view-1 primary; drop only its cross-cluster
         traffic: Example 2.4 case (1), the Byzantine sender-primary. *)
      Dep.add_drop_rule d (fun ~src ~dst -> src = 1 && dst >= 7 && dst < 14));

  (* Sample throughput every simulated second. *)
  Dep.start_clients d;
  Metrics.open_window metrics ~now:(Engine.now engine);
  let last = ref 0 in
  print_endline "  time   throughput (txn/s over the last second)";
  for sec = 1 to 22 do
    Engine.run_until engine ~until:(Time.sec sec);
    let total = Metrics.completed_txns metrics in
    Printf.printf "  t=%-2ds  %6d %s\n%!" sec (total - !last)
      (String.make (min 60 ((total - !last) / 60)) '#');
    last := total
  done;

  let vcs = Dep.view_changes d in
  let remote = ref 0 in
  for i = 0 to Config.n_replicas cfg - 1 do
    remote := !remote + Geobft.remote_vcs_triggered (Dep.replica d i)
  done;
  Printf.printf "\nlocal view changes completed: %d (crash at t=8s, remote request at t=14s)\n" vcs;
  Printf.printf "remote view-change requests honored by Oregon: %d\n" !remote;

  (* Despite everything, all live replicas agree. *)
  let live = [ 1; 2; 3; 4; 5; 7; 8; 9; 10; 11; 12; 13 ] in
  let agree = Ledger.agreement (List.map (fun i -> Dep.ledger d ~replica:i) live) in
  Printf.printf "surviving replicas agree on the executed sequence: %b\n" agree
