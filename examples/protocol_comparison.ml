(* Protocol comparison: the paper's headline experiment in miniature.

   Runs all five consensus protocols — GeoBFT and the four baselines —
   on the same four-region deployment and workload, and prints a
   side-by-side comparison (a small-scale version of Figure 11's n = 7
   column).  Expect GeoBFT on top, HotStuff second, the single-primary
   protocols (Pbft, Zyzzyva) WAN-bound in the middle, and Steward
   compute-bound at the bottom.

     dune exec examples/protocol_comparison.exe *)

open Resilientdb
module Runner = Experiments.Runner

let () =
  print_endline "== Five consensus protocols, one geo-scale deployment ==";
  print_endline "   (z = 4 regions: Oregon, Iowa, Montreal, Belgium; n = 7 replicas each)\n";
  let cfg = Config.make ~z:4 ~n:7 ~batch_size:100 () in
  Printf.printf "%-10s %12s %12s %10s %16s %16s\n" "protocol" "txn/s" "latency" "p99" "local msgs/dec"
    "global msgs/dec";
  let results =
    List.map
      (fun p ->
        let r = Runner.run (Rdb_experiments.Scenario.make p cfg) in
        Printf.printf "%-10s %12.0f %9.0f ms %7.0f ms %16.1f %16.1f\n%!" (Runner.proto_name p)
          r.Report.throughput_txn_s r.Report.avg_latency_ms r.Report.p99_latency_ms
          (Report.local_msgs_per_decision r)
          (Report.global_msgs_per_decision r);
        (p, r))
      Runner.all_protocols
  in
  let find p = List.assoc p results in
  let geo = (find Runner.Geobft).Report.throughput_txn_s in
  Printf.printf "\nGeoBFT speedup: %.1fx over Pbft, %.1fx over Zyzzyva, %.1fx over HotStuff, %.1fx over Steward\n"
    (geo /. (find Runner.Pbft).Report.throughput_txn_s)
    (geo /. (find Runner.Zyzzyva).Report.throughput_txn_s)
    (geo /. (find Runner.Hotstuff).Report.throughput_txn_s)
    (geo /. (find Runner.Steward).Report.throughput_txn_s);
  print_endline "(cf. paper §4: GeoBFT outperforms Pbft by up to 6x and HotStuff by up to 1.6x)"
